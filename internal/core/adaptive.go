package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"elastisched/internal/sched"
)

// Adaptive implements the dynamic algorithm-selection policy the paper
// sketches at the end of Section V-A: for workloads dominated by small jobs
// Delayed-LOS and EASY perform alike (and both beat LOS), while for
// large-job-heavy workloads Delayed-LOS wins — so select between Delayed-LOS
// and EASY from the observed proportion of small jobs.
//
// The policy keeps an exponentially weighted estimate of the small-job
// fraction over arriving work (a job is "small" if its size is at most
// SmallFrac of the machine) and delegates each cycle to EASY when the
// estimate exceeds SwitchAt, and to Delayed-LOS otherwise.
type Adaptive struct {
	// Cs is the Delayed-LOS threshold used when delegating to Delayed-LOS.
	Cs int
	// SmallFrac classifies a job as small when size <= SmallFrac * M.
	SmallFrac float64
	// SwitchAt is the small-job-fraction above which EASY is used.
	SwitchAt float64
	// Alpha is the EWMA weight for each newly observed job.
	Alpha float64

	delayed *DelayedLOS
	easy    *sched.EASY

	est    float64
	seen   map[int]bool
	inited bool
}

// NewAdaptive returns the selection policy with the defaults suggested by
// the paper's figures: small = at most 30% of the machine, switch to EASY
// when more than 70% of recent jobs are small.
func NewAdaptive(cs int) *Adaptive {
	return &Adaptive{Cs: cs, SmallFrac: 0.3, SwitchAt: 0.7, Alpha: 0.05}
}

// Name implements sched.Scheduler.
func (a *Adaptive) Name() string { return "Adaptive" }

// Heterogeneous implements sched.Scheduler; the selector is batch-only.
func (a *Adaptive) Heterogeneous() bool { return false }

// Mode reports which underlying policy the current estimate selects.
func (a *Adaptive) Mode() string {
	if a.est > a.SwitchAt {
		return "EASY"
	}
	return "Delayed-LOS"
}

// Schedule observes newly queued jobs and delegates the cycle.
func (a *Adaptive) Schedule(ctx *sched.Context) {
	if !a.inited {
		a.delayed = NewDelayedLOS(a.Cs)
		a.easy = &sched.EASY{}
		a.seen = make(map[int]bool)
		a.est = 1 // optimistic: assume small-job regime until observed
		a.inited = true
	}
	small := float64(ctx.M()) * a.SmallFrac
	for _, j := range ctx.Batch.Jobs() {
		if a.seen[j.ID] {
			continue
		}
		a.seen[j.ID] = true
		obs := 0.0
		if float64(j.Size) <= small {
			obs = 1
		}
		a.est = (1-a.Alpha)*a.est + a.Alpha*obs
	}
	if a.est > a.SwitchAt {
		a.easy.Schedule(ctx)
		return
	}
	a.delayed.Schedule(ctx)
}

// adaptiveState is the serialized logical state of the selector: the EWMA
// estimate and the set of observed job IDs. The embedded Delayed-LOS and
// EASY delegates are stateless beyond their Scratch caches, so they carry
// nothing.
type adaptiveState struct {
	Version int     `json:"version"`
	Est     float64 `json:"est"`
	Seen    []int   `json:"seen,omitempty"`
	Inited  bool    `json:"inited"`
}

// adaptiveStateVersion stamps the Adaptive snapshot encoding.
const adaptiveStateVersion = 1

// SnapshotState implements sched.Snapshotter: Adaptive is the one built-in
// policy with logical cross-cycle state (the small-job-fraction estimate
// and which jobs it has already observed).
func (a *Adaptive) SnapshotState() ([]byte, error) {
	st := adaptiveState{Version: adaptiveStateVersion, Est: a.est, Inited: a.inited}
	for id := range a.seen {
		st.Seen = append(st.Seen, id)
	}
	sort.Ints(st.Seen) // deterministic bytes regardless of map order
	return json.Marshal(st)
}

// RestoreState implements sched.Snapshotter.
func (a *Adaptive) RestoreState(b []byte) error {
	var st adaptiveState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("adaptive: decoding state: %v", err)
	}
	if st.Version != adaptiveStateVersion {
		return fmt.Errorf("adaptive: state version %d, want %d", st.Version, adaptiveStateVersion)
	}
	if st.Inited && !a.inited {
		// Run the lazy constructor so the delegates exist before the first
		// post-restore cycle.
		a.delayed = NewDelayedLOS(a.Cs)
		a.easy = &sched.EASY{}
		a.seen = make(map[int]bool, len(st.Seen))
		a.inited = true
	}
	a.est = st.Est
	for _, id := range st.Seen {
		a.seen[id] = true
	}
	return nil
}
