package core

import (
	"elastisched/internal/sched"
)

// Adaptive implements the dynamic algorithm-selection policy the paper
// sketches at the end of Section V-A: for workloads dominated by small jobs
// Delayed-LOS and EASY perform alike (and both beat LOS), while for
// large-job-heavy workloads Delayed-LOS wins — so select between Delayed-LOS
// and EASY from the observed proportion of small jobs.
//
// The policy keeps an exponentially weighted estimate of the small-job
// fraction over arriving work (a job is "small" if its size is at most
// SmallFrac of the machine) and delegates each cycle to EASY when the
// estimate exceeds SwitchAt, and to Delayed-LOS otherwise.
type Adaptive struct {
	// Cs is the Delayed-LOS threshold used when delegating to Delayed-LOS.
	Cs int
	// SmallFrac classifies a job as small when size <= SmallFrac * M.
	SmallFrac float64
	// SwitchAt is the small-job-fraction above which EASY is used.
	SwitchAt float64
	// Alpha is the EWMA weight for each newly observed job.
	Alpha float64

	delayed *DelayedLOS
	easy    *sched.EASY

	est    float64
	seen   map[int]bool
	inited bool
}

// NewAdaptive returns the selection policy with the defaults suggested by
// the paper's figures: small = at most 30% of the machine, switch to EASY
// when more than 70% of recent jobs are small.
func NewAdaptive(cs int) *Adaptive {
	return &Adaptive{Cs: cs, SmallFrac: 0.3, SwitchAt: 0.7, Alpha: 0.05}
}

// Name implements sched.Scheduler.
func (a *Adaptive) Name() string { return "Adaptive" }

// Heterogeneous implements sched.Scheduler; the selector is batch-only.
func (a *Adaptive) Heterogeneous() bool { return false }

// Mode reports which underlying policy the current estimate selects.
func (a *Adaptive) Mode() string {
	if a.est > a.SwitchAt {
		return "EASY"
	}
	return "Delayed-LOS"
}

// Schedule observes newly queued jobs and delegates the cycle.
func (a *Adaptive) Schedule(ctx *sched.Context) {
	if !a.inited {
		a.delayed = NewDelayedLOS(a.Cs)
		a.easy = &sched.EASY{}
		a.seen = make(map[int]bool)
		a.est = 1 // optimistic: assume small-job regime until observed
		a.inited = true
	}
	small := float64(ctx.M()) * a.SmallFrac
	for _, j := range ctx.Batch.Jobs() {
		if a.seen[j.ID] {
			continue
		}
		a.seen[j.ID] = true
		obs := 0.0
		if float64(j.Size) <= small {
			obs = 1
		}
		a.est = (1-a.Alpha)*a.est + a.Alpha*obs
	}
	if a.est > a.SwitchAt {
		a.easy.Schedule(ctx)
		return
	}
	a.delayed.Schedule(ctx)
}
