package core

import (
	"elastisched/internal/sched"
)

// LOSPlus is the *stronger* reading of the Lookahead Optimizing Scheduler:
// the head job is started right away whenever it fits (as in LOS), and the
// remaining capacity is then packed with the utilization-maximizing set
// from Basic_DP in the same cycle — rather than waiting for the next
// scheduling event as the paper's narration of LOS implies.
//
// The original Shmueli & Feitelson algorithm is arguably this variant; the
// paper under reproduction describes LOS as "start the job at head of queue
// right away ... instead of finding the right combination of jobs". Both
// are implemented so the interpretation gap is measurable: see the
// `los-variants` experiment. LOSPlus is batch-only.
type LOSPlus struct {
	// Lookahead bounds the DP window (default DefaultLookahead).
	Lookahead int

	scratch Scratch
}

// NewLOSPlus returns the head-plus-DP-fill LOS variant.
func NewLOSPlus() *LOSPlus {
	return &LOSPlus{Lookahead: DefaultLookahead}
}

// Name implements sched.Scheduler.
func (l *LOSPlus) Name() string { return "LOS+" }

// Heterogeneous implements sched.Scheduler.
func (l *LOSPlus) Heterogeneous() bool { return false }

// Schedule runs one cycle: start the head if it fits, then DP-fill; if the
// head does not fit, reserve for it and backfill with Reservation_DP.
func (l *LOSPlus) Schedule(ctx *sched.Context) {
	m := ctx.Free()
	if m <= 0 || ctx.Batch.Empty() {
		return
	}
	head := ctx.Batch.Head()
	if ctx.Fits(head.Size) {
		if !ctx.Start(head) {
			return
		}
		m = ctx.Free()
		if m <= 0 || ctx.Batch.Empty() {
			return
		}
		window := ctx.Window(m, l.Lookahead)
		startAll(ctx, BasicDP(window, m, &l.scratch))
		return
	}
	fret, frec, ok := headShadow(ctx, head)
	if !ok {
		return
	}
	window := ctx.Window(m, l.Lookahead)
	startAll(ctx, ReservationDP(window, m, frec, fret, ctx.Now, &l.scratch))
}
