package core

import (
	"elastisched/internal/job"
	"elastisched/internal/sched"
)

// DefaultCs is a reasonable default maximum skip count; the paper finds the
// optimum empirically around 7-8 for balanced workloads (Figure 5) and ~3
// when small jobs dominate (Figure 6).
const DefaultCs = 7

// DelayedLOS is the paper's Algorithm 1. It relaxes LOS's "start the head
// right away" rule: while the head job's skip count is below the threshold
// C_s, the scheduler is free to pick the utilization-maximizing set from
// Basic_DP even if that set skips the head. Every instant the head fits but
// is skipped charges one skip; once the count reaches C_s the head is
// started immediately (bounding its waiting time, as LOS's rule did, but
// only after the packing freedom has been exploited). A head that does not
// fit at all gets the usual reservation and Reservation_DP backfill.
type DelayedLOS struct {
	// Cs is the maximum skip count threshold (paper's C_s).
	Cs int
	// Lookahead bounds the DP window (default DefaultLookahead).
	Lookahead int

	scratch Scratch
}

// NewDelayedLOS returns a Delayed-LOS scheduler with threshold cs.
func NewDelayedLOS(cs int) *DelayedLOS {
	return &DelayedLOS{Cs: cs, Lookahead: DefaultLookahead}
}

// Name implements sched.Scheduler.
func (d *DelayedLOS) Name() string { return "Delayed-LOS" }

// Heterogeneous implements sched.Scheduler; Delayed-LOS is batch-only.
func (d *DelayedLOS) Heterogeneous() bool { return false }

// Schedule runs one Delayed-LOS cycle (Algorithm 1).
func (d *DelayedLOS) Schedule(ctx *sched.Context) {
	m := ctx.Free()
	if m <= 0 || ctx.Batch.Empty() {
		return
	}
	head := ctx.Batch.Head()
	switch {
	case ctx.Fits(head.Size) && head.SCount >= d.Cs:
		// Lines 3-5: the head has been skipped enough; start it right away.
		ctx.Start(head)

	case head.Size <= m:
		// Lines 6-11: free packing via Basic_DP; charge a skip if the head
		// was not selected.
		window := ctx.Window(m, d.Lookahead)
		set := BasicDP(window, m, &d.scratch)
		if !Contains(set, head) {
			bumpSkip(ctx, head)
		}
		startAll(ctx, set)

	default:
		// Lines 12-20: head does not fit; reserve and backfill.
		fret, frec, ok := headShadow(ctx, head)
		if !ok {
			return
		}
		window := ctx.Window(m, d.Lookahead)
		set := ReservationDP(window, m, frec, fret, ctx.Now, &d.scratch)
		startAll(ctx, set)
	}
}

// selectBasic exposes the Basic_DP decision for a hypothetical capacity,
// used by the adaptive policy and by tests. The returned slice follows the
// Scratch aliasing contract: it is valid only until the scheduler's next
// DP call.
func (d *DelayedLOS) selectBasic(ctx *sched.Context, m int) []*job.Job {
	return BasicDP(ctx.Window(m, d.Lookahead), m, &d.scratch)
}
