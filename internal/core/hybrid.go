package core

import (
	"elastisched/internal/sched"
)

// HybridLOS is the paper's Algorithm 2: Delayed-LOS extended for
// heterogeneous workloads. Batch jobs are packed for maximum utilization
// while explicit reservations protect the rigid start times of dedicated
// jobs:
//
//   - with no dedicated jobs pending, it behaves exactly like Delayed-LOS;
//   - a dedicated job whose requested start has arrived is moved to the head
//     of the batch queue with its skip count forced to C_s, so it starts at
//     the first instant capacity allows (Algorithm 3);
//   - otherwise batch jobs are chosen by Reservation_DP under the dedicated
//     freeze (fret_d, frec_d), computed for the earliest requested start —
//     including the insufficient-capacity case where the dedicated jobs will
//     unavoidably start late (lines 24-30);
//   - a batch head that has exhausted its skips starts right away (lines
//     35-37). The paper activates it without a capacity check; we start it
//     only if it fits and otherwise fall back to Delayed-LOS's reservation
//     for it, since an unchecked start would oversubscribe the machine
//     (documented deviation).
type HybridLOS struct {
	// Cs is the maximum skip count threshold shared with the embedded
	// Delayed-LOS behaviour.
	Cs int
	// Lookahead bounds the DP window (default DefaultLookahead).
	Lookahead int

	// delayed and scratch each carry their own DP cycle memo; the embedded
	// Delayed-LOS solves Basic_DP windows while the hybrid branches solve
	// Reservation_DP windows, so keeping the memos separate preserves hits
	// when the scheduler alternates between the two.
	delayed DelayedLOS
	scratch Scratch
}

// NewHybridLOS returns a Hybrid-LOS scheduler with threshold cs.
func NewHybridLOS(cs int) *HybridLOS {
	return &HybridLOS{
		Cs:        cs,
		Lookahead: DefaultLookahead,
		delayed:   DelayedLOS{Cs: cs, Lookahead: DefaultLookahead},
	}
}

// SetLookahead bounds the DP window of both the hybrid logic and the
// embedded Delayed-LOS behaviour.
func (h *HybridLOS) SetLookahead(n int) {
	h.Lookahead = n
	h.delayed.Lookahead = n
}

// Name implements sched.Scheduler.
func (h *HybridLOS) Name() string { return "Hybrid-LOS" }

// Heterogeneous implements sched.Scheduler.
func (h *HybridLOS) Heterogeneous() bool { return true }

// Schedule runs one Hybrid-LOS cycle (Algorithm 2).
func (h *HybridLOS) Schedule(ctx *sched.Context) {
	m := ctx.Free()
	switch {
	case m > 0 && !ctx.Batch.Empty():
		head := ctx.Batch.Head()
		switch {
		case ctx.Dedicated.Empty():
			// Lines 3-4: pure batch scheduling.
			h.delayed.Schedule(ctx)

		case head.SCount < h.Cs:
			// Lines 5-34.
			if sched.MoveDueDedicated(ctx, h.Cs) {
				return // line 7; the engine's fixed point re-enters
			}
			// Lines 8-30: pack under the dedicated freeze.
			fz, _ := sched.DedicatedFreeze(ctx)
			window := ctx.Window(m, h.Lookahead)
			set := ReservationDP(window, m, fz.Capacity, fz.Time, ctx.Now, &h.scratch)
			if !Contains(set, head) {
				bumpSkip(ctx, head) // lines 22 and 30
			}
			startAll(ctx, set) // lines 32-33

		default:
			// Lines 35-37: the head has exhausted its skips.
			if ctx.Fits(head.Size) && ctx.Start(head) {
				return
			}
			// Deviation: the paper's unconditional activation is unsound
			// when the head does not fit; bound its wait with its own
			// reservation as Delayed-LOS does.
			fret, frec, ok := headShadow(ctx, head)
			if !ok {
				return
			}
			window := ctx.Window(m, h.Lookahead)
			set := ReservationDP(window, m, frec, fret, ctx.Now, &h.scratch)
			startAll(ctx, set)
		}

	case !ctx.Dedicated.Empty():
		// Lines 39-42: no batch work (or no capacity); promote a due
		// dedicated job so it is waiting at the head when capacity frees.
		sched.MoveDueDedicated(ctx, h.Cs)
	}
}
