package core

import (
	"testing"

	"elastisched/internal/testkit"
)

func TestDelayedLOSPaperFigure2(t *testing.T) {
	// The motivating example: Delayed-LOS skips the 7-group head and packs
	// 4+6 = 10 groups (Alternative-(b)).
	h := testkit.New(320, 32)
	head := h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	h.Cycle(NewDelayedLOS(7))
	wantIDSet(t, h.StartedIDs(), []int{2, 3})
	if h.Mach.Used() != 320 {
		t.Errorf("utilization %d, want 320 (the paper's Alternative-(b))", h.Mach.Used())
	}
	if head.SCount != 1 {
		t.Errorf("skipped head scount = %d, want 1", head.SCount)
	}
}

func TestDelayedLOSHeadStartsWhenInOptimum(t *testing.T) {
	// Capacity allows head + others: head selected, no skip charged.
	h := testkit.New(320, 32)
	head := h.AddBatch(1, 128, 100)
	h.AddBatch(2, 96, 100)
	h.AddBatch(3, 96, 100)
	h.Cycle(NewDelayedLOS(7))
	wantIDSet(t, h.StartedIDs(), []int{1, 2, 3})
	if head.SCount != 0 {
		t.Errorf("head scount = %d, want 0", head.SCount)
	}
}

func TestBumpSkipOncePerInstant(t *testing.T) {
	// Within one instant the engine may cycle the scheduler several times;
	// the head is charged at most one skip per instant.
	h := testkit.New(320, 32)
	head := h.AddBatch(1, 7*32, 1000)
	ctx := h.Ctx()
	bumpSkip(ctx, head)
	bumpSkip(ctx, head)
	if head.SCount != 1 {
		t.Fatalf("scount = %d after two bumps at one instant, want 1", head.SCount)
	}
	h.Now = 50
	bumpSkip(h.Ctx(), head)
	if head.SCount != 2 {
		t.Fatalf("scount = %d after a bump at a later instant, want 2", head.SCount)
	}
}

func TestDelayedLOSForcesHeadAtThreshold(t *testing.T) {
	// Once scount reaches C_s the head starts right away even though
	// skipping it would utilize more.
	h := testkit.New(320, 32)
	head := h.AddBatch(1, 7*32, 1000)
	head.SCount = 2 // at threshold
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	h.Cycle(NewDelayedLOS(2))
	ids := h.StartedIDs()
	if len(ids) == 0 || ids[0] != 1 {
		t.Fatalf("head not forced at threshold: started %v", ids)
	}
}

func TestDelayedLOSSkipAccumulatesAcrossInstants(t *testing.T) {
	cs := 3
	d := NewDelayedLOS(cs)
	h := testkit.New(320, 32)
	head := h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	h.Cycle(d) // packs 2+3, skip 1
	if head.SCount != 1 {
		t.Fatalf("scount = %d, want 1", head.SCount)
	}
	// Jobs 2 and 3 finish; new pair arrives; head skipped again...
	h.Complete(h.Started[0], 10)
	h.Complete(h.Started[1], 10)
	h.AddBatch(4, 4*32, 1000)
	h.AddBatch(5, 6*32, 1000)
	h.Cycle(d)
	if head.SCount != 2 {
		t.Fatalf("scount = %d, want 2", head.SCount)
	}
	h.Complete(h.Started[0], 20)
	h.Complete(h.Started[1], 20)
	h.AddBatch(6, 4*32, 1000)
	h.AddBatch(7, 6*32, 1000)
	h.Cycle(d)
	if head.SCount != 3 {
		t.Fatalf("scount = %d, want 3", head.SCount)
	}
	// Threshold reached: next instant the head must start first.
	h.Complete(h.Started[0], 30)
	h.Complete(h.Started[1], 30)
	h.AddBatch(8, 4*32, 1000)
	h.AddBatch(9, 6*32, 1000)
	h.Cycle(d)
	ids := h.StartedIDs()
	if len(ids) == 0 || ids[0] != 1 {
		t.Fatalf("head not started after C_s skips: %v", ids)
	}
}

func TestDelayedLOSReservationWhenHeadTooBig(t *testing.T) {
	// Head exceeds free capacity: Reservation_DP packs under the head's
	// shadow; the head's scount is NOT charged (Algorithm 1 lines 12-20).
	h := testkit.New(320, 32)
	h.AddRunning(9, 160, 100)
	head := h.AddBatch(1, 320, 1000)
	h.AddBatch(2, 96, 50)
	h.AddBatch(3, 96, 5000)
	h.Cycle(NewDelayedLOS(7))
	wantIDSet(t, h.StartedIDs(), []int{2})
	if head.SCount != 0 {
		t.Errorf("scount charged in reservation branch: %d", head.SCount)
	}
}

func TestDelayedLOSZeroCsBehavesLikeHeadFirst(t *testing.T) {
	// C_s = 0: the head is always started when it fits (scount 0 >= 0).
	h := testkit.New(320, 32)
	h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	h.Cycle(NewDelayedLOS(0))
	ids := h.StartedIDs()
	if ids[0] != 1 {
		t.Fatalf("C_s=0 did not start head first: %v", ids)
	}
}

func TestDelayedLOSSCountNeverExceedsCs(t *testing.T) {
	d := NewDelayedLOS(2)
	h := testkit.New(320, 32)
	head := h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	for i := 0; i < 5; i++ {
		h.Now = int64(i * 10)
		h.Once(d)
		if head.SCount > 2 {
			t.Fatalf("scount %d exceeded C_s=2", head.SCount)
		}
	}
}

func TestDelayedLOSFlags(t *testing.T) {
	d := NewDelayedLOS(7)
	if d.Name() != "Delayed-LOS" || d.Heterogeneous() {
		t.Error("flags wrong")
	}
	if d.Cs != 7 || d.Lookahead != DefaultLookahead {
		t.Error("constructor defaults wrong")
	}
}

func TestDelayedLOSLookaheadBound(t *testing.T) {
	// With lookahead 1 only the head is a candidate: it starts (it is the
	// whole window's optimum).
	d := NewDelayedLOS(7)
	d.Lookahead = 1
	h := testkit.New(320, 32)
	h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	h.Cycle(d)
	ids := h.StartedIDs()
	if len(ids) == 0 || ids[0] != 1 {
		t.Fatalf("lookahead=1 should start the head: %v", ids)
	}
}

func TestDelayedLOSContiguousFragmentation(t *testing.T) {
	// Contiguous machine with a hole pattern: running jobs hold groups
	// 0 (id 11) and 2 (id 13); free groups are 1 and 3..9 (run of 7).
	// A head needing 8 groups fits capacity (9 free) but not contiguously:
	// Delayed-LOS must not start it and must not panic or livelock.
	h := testkit.NewContiguous(320, 32)
	h.AddRunning(11, 32, 100) // group 0
	h.AddRunning(12, 32, 100) // group 1 (released below)
	h.AddRunning(13, 32, 100) // group 2
	h.Complete(h.Active.Find(12), 10)
	h.Now = 10
	head := h.AddBatch(1, 8*32, 1000)
	head.SCount = 7         // forced-start branch: Fits must veto it
	h.AddBatch(2, 32, 1000) // fits in the hole
	h.Cycle(NewDelayedLOS(7))
	for _, j := range h.Started {
		if j.ID == 1 {
			t.Fatal("fragmented head started on contiguous machine")
		}
	}
	if len(h.Started) == 0 {
		t.Fatal("small job should still fill the hole")
	}
}

func TestLOSContiguousToleratesPartialDPFailure(t *testing.T) {
	// DP selects a capacity-feasible set; contiguity rejects part of it.
	// The cycle must complete with the placeable subset started.
	h := testkit.NewContiguous(320, 32)
	h.AddRunning(11, 32, 100) // group 0
	h.AddRunning(12, 32, 100) // group 1
	h.AddRunning(13, 32, 100) // group 2
	h.Complete(h.Active.Find(12), 10)
	h.Now = 10
	h.AddRunning(14, 7*32, 100) // groups 3..9: only group 1 free now
	h.AddBatch(1, 64, 50)       // 2 groups: cannot place (only 1-group hole)
	h.AddBatch(2, 32, 50)       // fits the hole
	h.Cycle(NewLOSPlus())
	ids := h.StartedIDs()
	if len(ids) != 1 || ids[0] != 2 {
		t.Fatalf("started %v, want [2]", ids)
	}
}
