package core

import (
	"testing"

	"elastisched/internal/job"
	"elastisched/internal/testkit"
)

func TestHybridBehavesLikeDelayedWithoutDedicated(t *testing.T) {
	// No dedicated jobs pending: Algorithm 2 line 4 — exactly Delayed-LOS,
	// so the Figure 2 packing appears.
	h := testkit.New(320, 32)
	h.AddBatch(1, 7*32, 1000)
	h.AddBatch(2, 4*32, 1000)
	h.AddBatch(3, 6*32, 1000)
	h.Cycle(NewHybridLOS(7))
	wantIDSet(t, h.StartedIDs(), []int{2, 3})
}

func TestHybridMovesDueDedicatedAndStartsIt(t *testing.T) {
	h := testkit.New(320, 32)
	h.AddBatch(1, 96, 1000)
	d := h.AddDed(2, 64, 100, 50)
	h.Now = 50
	h.Cycle(NewHybridLOS(7))
	// The due dedicated job moves to the batch head with scount = C_s and
	// starts immediately; the batch job follows.
	ids := h.StartedIDs()
	if len(ids) != 2 || ids[0] != 2 {
		t.Fatalf("started %v, want dedicated job 2 first", ids)
	}
	if !d.Rigid || d.SCount != 7 {
		t.Errorf("moved job rigid=%v scount=%d, want true, 7", d.Rigid, d.SCount)
	}
}

func TestHybridPacksUnderDedicatedFreeze(t *testing.T) {
	// Dedicated 320 at t=100: only batch jobs finishing before then may
	// start (Algorithm 2 lines 16-22).
	h := testkit.New(320, 32)
	h.AddDed(1, 320, 500, 100)
	h.AddBatch(2, 160, 50)   // ends before the freeze
	h.AddBatch(3, 160, 5000) // would hold processors at t=100
	h.Cycle(NewHybridLOS(7))
	wantIDSet(t, h.StartedIDs(), []int{2})
}

func TestHybridChargesSkipUnderFreeze(t *testing.T) {
	// The batch head not selected by Reservation_DP gets a skip even in
	// the dedicated branch (Algorithm 2 lines 22 and 30).
	h := testkit.New(320, 32)
	h.AddDed(1, 320, 500, 100)
	head := h.AddBatch(2, 160, 5000) // blocked by the freeze
	h.AddBatch(3, 160, 50)
	h.Cycle(NewHybridLOS(7))
	wantIDSet(t, h.StartedIDs(), []int{3})
	if head.SCount != 1 {
		t.Errorf("head scount = %d, want 1", head.SCount)
	}
}

func TestHybridInsufficientCapacityFreeze(t *testing.T) {
	// Dedicated demand cannot fit at its requested start (a running job
	// holds too much): the freeze slips to the completion that frees
	// enough (Algorithm 2 lines 24-30) and batch jobs pack under it.
	h := testkit.New(320, 32)
	h.AddRunning(9, 288, 150) // holds past the requested start
	h.AddDed(1, 96, 500, 100)
	h.AddBatch(2, 32, 40)   // ends before t=150
	h.AddBatch(3, 32, 5000) // would consume the slipped freeze capacity
	h.Cycle(NewHybridLOS(7))
	// frec at t=150: free(32) + 288 - 96 = 224... job 3 (32, long) fits
	// 224: both may start. Check no crash and the dedicated job is intact.
	if h.Ded.Len() != 1 {
		t.Fatal("dedicated job lost")
	}
	for _, j := range h.Started {
		if j.ID == 1 {
			t.Fatal("future dedicated job started early")
		}
	}
}

func TestHybridForcedHeadAtThreshold(t *testing.T) {
	// Head with scount >= C_s starts right away even with a dedicated
	// freeze pending (Algorithm 2 lines 35-37).
	h := testkit.New(320, 32)
	h.AddDed(1, 320, 500, 100)
	head := h.AddBatch(2, 160, 5000)
	head.SCount = 7
	h.Cycle(NewHybridLOS(7))
	ids := h.StartedIDs()
	if len(ids) == 0 || ids[0] != 2 {
		t.Fatalf("forced head did not start: %v", ids)
	}
}

func TestHybridForcedHeadTooBigFallsBackToReservation(t *testing.T) {
	// Deviation from the paper's unchecked activation: an oversized forced
	// head cannot start; the cycle reserves for it instead of panicking.
	h := testkit.New(320, 32)
	h.AddRunning(9, 160, 100)
	h.AddDed(1, 32, 10, 500)
	head := h.AddBatch(2, 320, 1000)
	head.SCount = 7
	h.AddBatch(3, 96, 50)
	h.Cycle(NewHybridLOS(7))
	wantIDSet(t, h.StartedIDs(), []int{3})
}

func TestHybridPromotesDueDedicatedWhenBatchEmpty(t *testing.T) {
	// Lines 39-42: no batch jobs, a due dedicated job still moves and
	// starts.
	h := testkit.New(320, 32)
	h.AddDed(1, 96, 100, 20)
	h.Now = 20
	h.Cycle(NewHybridLOS(7))
	wantIDsOrder(t, h.StartedIDs(), []int{1})
}

func TestHybridPromotesDueDedicatedWhenMachineFull(t *testing.T) {
	h := testkit.New(320, 32)
	h.AddRunning(9, 320, 100)
	d := h.AddDed(1, 96, 100, 20)
	h.Now = 20
	h.Cycle(NewHybridLOS(7))
	if len(h.Started) != 0 {
		t.Fatal("nothing can start on a full machine")
	}
	if h.Batch.Head() != d {
		t.Fatal("due dedicated job should wait at the batch head")
	}
}

func TestHybridMultipleDueDedicatedKeepOrder(t *testing.T) {
	// Two dedicated jobs due at the same instant: the earlier start goes
	// first (moved one per cycle; the engine loop drains both).
	h := testkit.New(320, 32)
	h.AddDed(1, 96, 100, 10)
	h.AddDed(2, 96, 100, 20)
	h.Now = 25
	h.Cycle(NewHybridLOS(7))
	ids := h.StartedIDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("due dedicated jobs started as %v, want [1 2]", ids)
	}
}

func TestHybridDedicatedWaitMeasuredFromRequestedStart(t *testing.T) {
	h := testkit.New(320, 32)
	h.AddRunning(9, 320, 100)
	d := h.AddDed(1, 96, 100, 20)
	h.Now = 20
	h.Cycle(NewHybridLOS(7))
	h.Complete(h.Active.Jobs()[0], 100)
	h.Now = 100
	h.Cycle(NewHybridLOS(7))
	if d.State != job.Running || d.StartTime != 100 {
		t.Fatalf("dedicated job state=%v start=%d", d.State, d.StartTime)
	}
	if d.Wait() != 80 {
		t.Errorf("dedicated wait = %d, want 80 (from requested start 20)", d.Wait())
	}
}

func TestHybridFlags(t *testing.T) {
	hl := NewHybridLOS(5)
	if hl.Name() != "Hybrid-LOS" || !hl.Heterogeneous() {
		t.Error("flags wrong")
	}
	if hl.Cs != 5 || hl.delayed.Cs != 5 {
		t.Error("embedded Delayed-LOS threshold not propagated")
	}
	hl.SetLookahead(9)
	if hl.Lookahead != 9 || hl.delayed.Lookahead != 9 {
		t.Error("SetLookahead not propagated")
	}
}

func TestHybridIdleNoop(t *testing.T) {
	h := testkit.New(320, 32)
	h.Cycle(NewHybridLOS(7))
	if len(h.Started) != 0 {
		t.Error("idle hybrid started jobs")
	}
}
