package core

import (
	"elastisched/internal/job"
	"elastisched/internal/sched"
)

// LOS is the Lookahead Optimizing Scheduler of Shmueli & Feitelson, as the
// paper characterizes it: the job at the head of the queue is started right
// away whenever enough capacity is available (this bounds its waiting time
// but, per the paper's claim, is too aggressive); the remaining capacity is
// filled with the utilization-maximizing set from Basic_DP. When the head
// does not fit, a reservation is made at the time enough running jobs will
// have drained, and Reservation_DP fills the holes before it.
//
// With Ded set, LOS becomes the paper's LOS-D: due dedicated jobs move to
// the queue head, and while dedicated reservations are pending the packing
// runs under the dedicated freeze (fret_d, frec_d) instead of Basic_DP.
type LOS struct {
	// Lookahead bounds the DP window (default DefaultLookahead).
	Lookahead int
	// Ded enables the dedicated-queue appendage (LOS-D).
	Ded bool

	scratch Scratch
}

// NewLOS returns a LOS scheduler (LOS-D when ded is set).
func NewLOS(ded bool) *LOS {
	return &LOS{Lookahead: DefaultLookahead, Ded: ded}
}

// Name implements sched.Scheduler.
func (l *LOS) Name() string {
	if l.Ded {
		return "LOS-D"
	}
	return "LOS"
}

// Heterogeneous implements sched.Scheduler.
func (l *LOS) Heterogeneous() bool { return l.Ded }

// Schedule runs one LOS cycle.
func (l *LOS) Schedule(ctx *sched.Context) {
	if l.Ded && sched.MoveDueDedicated(ctx, 0) {
		return
	}
	m := ctx.Free()
	if m <= 0 || ctx.Batch.Empty() {
		return
	}
	var dfz *sched.Freeze
	if l.Ded && !ctx.Dedicated.Empty() {
		f, _ := sched.DedicatedFreeze(ctx)
		dfz = &f
	}

	head := ctx.Batch.Head()
	switch {
	case ctx.Fits(head.Size) && dfz.Allows(ctx.Now, head):
		// Start the head right away — the aggressive rule this paper
		// critiques: "instead of finding the right combination of jobs that
		// maximize utilization at a given time, they propose to start the
		// job at head of queue right away if enough capacity is available"
		// (Section III-A). The engine's fixed-point loop re-enters, so
		// successive fitting heads drain in order; the DP only packs when
		// the head blocks.
		if ctx.Start(head) {
			dfz.Commit(ctx.Now, head)
		}

	case head.Size <= m && dfz != nil:
		// The head fits the machine but violates the dedicated freeze; pack
		// under the freeze (the head is a candidate like any other and will
		// be excluded by its freeze demand).
		window := ctx.Window(m, l.Lookahead)
		set := ReservationDP(window, m, dfz.Capacity, dfz.Time, ctx.Now, &l.scratch)
		startAll(ctx, set)

	default:
		// Head does not fit: reserve for it (or, in LOS-D with pending
		// dedicated jobs, let the dedicated freeze take precedence) and
		// backfill with Reservation_DP.
		fret, frec, ok := headShadow(ctx, head)
		if dfz != nil {
			fret, frec, ok = dfz.Time, dfz.Capacity, true
		}
		if !ok {
			return
		}
		window := ctx.Window(m, l.Lookahead)
		set := ReservationDP(window, m, frec, fret, ctx.Now, &l.scratch)
		startAll(ctx, set)
	}
}

// headShadow computes the reservation for a head job that does not fit:
// walking the active list in residual order, find the first prefix whose
// release makes the head fit (Algorithm 1 lines 13-15). fret is that job's
// kill-by time; frec is the spare capacity left there after the head is
// placed. ok is false only if the head could never fit (prevented by
// workload validation).
func headShadow(ctx *sched.Context, head *job.Job) (fret int64, frec int, ok bool) {
	cum := ctx.Free()
	for _, a := range ctx.Active.Jobs() {
		cum += a.Size
		if head.Size <= cum {
			return a.EndTime, cum - head.Size, true
		}
	}
	return 0, 0, false
}

// startAll dispatches every selected job. set may alias the scheduler's
// Scratch (the DP aliasing contract); it is fully consumed here, before
// any further DP call on the same Scratch.
func startAll(ctx *sched.Context, set []*job.Job) {
	for _, j := range set {
		ctx.Start(j)
	}
}

// bumpSkip charges one skip to the head job for the current instant — at
// most once per instant even though the engine may cycle the scheduler
// several times within it. (With an unbounded DP window the guard is
// provably redundant — a second Basic_DP pass in the same instant never
// finds another fitting candidate set — but lookahead truncation and the
// Hybrid branches can re-enter, so the semantics are pinned here.)
func bumpSkip(ctx *sched.Context, head *job.Job) {
	if head.LastSkip == ctx.Now {
		return
	}
	head.LastSkip = ctx.Now
	head.SCount++
}
