package cwf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParseLine checks the CWF line parser never panics and that every
// accepted submission survives a format/parse round trip.
func FuzzParseLine(f *testing.F) {
	f.Add("1 0 -1 100 64 -1 -1 64 100 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 S -1")
	f.Add("1 60 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 ET 300")
	f.Add("2 10 -1 200 32 -1 -1 32 200 -1 1 -1 -1 -1 -1 -1 -1 -1 500 S -1")
	f.Add("1 0 -1 100 64 -1 -1 64 100 -1 1 -1 -1 -1 -1 -1 -1 -1")
	f.Add("")
	f.Add("x y z")
	f.Add("1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 RP 1e9")
	f.Fuzz(func(t *testing.T, line string) {
		rec, err := ParseLine(line)
		if err != nil {
			return
		}
		out := FormatLine(rec)
		rec2, err := ParseLine(out)
		if err != nil {
			t.Fatalf("formatted line does not re-parse: %v\n%s", err, out)
		}
		if rec2.JobID != rec.JobID || rec2.Type != rec.Type || rec2.Amount != rec.Amount ||
			rec2.ReqStartTime != rec.ReqStartTime {
			t.Fatalf("round trip changed record: %+v vs %+v", rec, rec2)
		}
	})
}

// FuzzParse checks the stream parser never panics on arbitrary input and
// that well-formed output re-parses to the same counts.
func FuzzParse(f *testing.F) {
	f.Add("; header\n1 0 -1 100 64 -1 -1 64 100 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 S -1\n")
	f.Add("1 0 -1 100 64 -1 -1 64 100 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 S -1\n1 60 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 ET 300\n")
	f.Add(";;; \n\n\n")
	f.Fuzz(func(t *testing.T, text string) {
		w, err := Parse(strings.NewReader(text))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, w); err != nil {
			t.Fatalf("write of parsed workload failed: %v", err)
		}
		w2, err := Parse(&buf)
		if err != nil {
			t.Fatalf("round trip does not re-parse: %v", err)
		}
		if len(w2.Jobs) != len(w.Jobs) || len(w2.Commands) != len(w.Commands) {
			t.Fatalf("round trip changed counts: %d/%d -> %d/%d",
				len(w.Jobs), len(w.Commands), len(w2.Jobs), len(w2.Commands))
		}
	})
}
