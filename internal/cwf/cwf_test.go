package cwf

import (
	"bytes"
	"strings"
	"testing"

	"elastisched/internal/job"
	"elastisched/internal/swf"
)

const sample = `; CWF sample
1 0 -1 100 64 -1 -1 64 100 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 S -1
2 10 -1 200 32 -1 -1 32 200 -1 1 -1 -1 -1 -1 -1 -1 -1 500 S -1
1 60 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 ET 300
2 70 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 -1 RT 50
`

func TestParseSplitsJobsAndCommands(t *testing.T) {
	w, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 2 || len(w.Commands) != 2 {
		t.Fatalf("jobs=%d commands=%d, want 2, 2", len(w.Jobs), len(w.Commands))
	}
	if w.NumBatch() != 1 || w.NumDedicated() != 1 {
		t.Errorf("batch=%d dedicated=%d, want 1, 1", w.NumBatch(), w.NumDedicated())
	}
	j := w.Jobs[1]
	if j.ID != 2 || j.Class != job.Dedicated || j.ReqStart != 500 || j.Size != 32 {
		t.Errorf("dedicated job parsed wrong: %+v", j)
	}
	c := w.Commands[0]
	if c.JobID != 1 || c.Issue != 60 || c.Type != ExtendTime || c.Amount != 300 {
		t.Errorf("ET command parsed wrong: %+v", c)
	}
}

func TestParsePlainSWFLines(t *testing.T) {
	line := "1 0 -1 100 64 -1 -1 64 100 -1 1 -1 -1 -1 -1 -1 -1 -1"
	w, err := Parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Jobs) != 1 || w.Jobs[0].Class != job.Batch {
		t.Fatal("18-field line should parse as batch submission")
	}
}

func TestParseWrongFieldCount(t *testing.T) {
	line := "1 0 -1 100 64 -1 -1 64 100 -1 1 -1 -1 -1 -1 -1 -1 -1 -1 S"
	if _, err := Parse(strings.NewReader(line)); err == nil {
		t.Error("20-field line accepted")
	}
}

func TestReqTypeRoundTrip(t *testing.T) {
	for _, typ := range []ReqType{Submit, ExtendTime, ReduceTime, ExtendProc, ReduceProc} {
		got, err := ParseReqType(typ.String())
		if err != nil || got != typ {
			t.Errorf("round trip of %v failed: %v %v", typ, got, err)
		}
	}
	if _, err := ParseReqType("XX"); err == nil {
		t.Error("unknown type accepted")
	}
	if got, err := ParseReqType(" et "); err != nil || got != ExtendTime {
		t.Error("case/space-insensitive parse failed")
	}
}

func TestIsECC(t *testing.T) {
	if Submit.IsECC() {
		t.Error("S is not an ECC")
	}
	for _, typ := range []ReqType{ExtendTime, ReduceTime, ExtendProc, ReduceProc} {
		if !typ.IsECC() {
			t.Errorf("%v should be an ECC", typ)
		}
	}
}

func TestValidate(t *testing.T) {
	w, _ := Parse(strings.NewReader(sample))
	if err := w.Validate(320); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	if err := w.Validate(32); err == nil {
		t.Error("64-proc job on 32-proc machine accepted")
	}
}

func TestValidateDuplicateID(t *testing.T) {
	w := &Workload{Jobs: []*job.Job{
		{ID: 1, Size: 32, Dur: 10, ReqStart: -1},
		{ID: 1, Size: 32, Dur: 10, ReqStart: -1},
	}}
	if err := w.Validate(320); err == nil {
		t.Error("duplicate job ID accepted")
	}
}

func TestValidateOrphanCommand(t *testing.T) {
	w := &Workload{
		Jobs:     []*job.Job{{ID: 1, Size: 32, Dur: 10, ReqStart: -1}},
		Commands: []Command{{JobID: 9, Issue: 5, Type: ExtendTime, Amount: 10}},
	}
	if err := w.Validate(320); err == nil {
		t.Error("command for unknown job accepted")
	}
}

func TestValidateBadAmount(t *testing.T) {
	w := &Workload{
		Jobs:     []*job.Job{{ID: 1, Size: 32, Dur: 10, ReqStart: -1}},
		Commands: []Command{{JobID: 1, Issue: 5, Type: ExtendTime, Amount: 0}},
	}
	if err := w.Validate(320); err == nil {
		t.Error("zero-amount command accepted")
	}
}

func TestSortOrders(t *testing.T) {
	w := &Workload{
		Jobs: []*job.Job{
			{ID: 2, Size: 32, Dur: 1, Arrival: 100, ReqStart: -1},
			{ID: 1, Size: 32, Dur: 1, Arrival: 50, ReqStart: -1},
		},
		Commands: []Command{
			{JobID: 1, Issue: 300, Type: ExtendTime, Amount: 1},
			{JobID: 2, Issue: 200, Type: ReduceTime, Amount: 1},
		},
	}
	w.Sort()
	if w.Jobs[0].ID != 1 || w.Commands[0].JobID != 2 {
		t.Error("Sort did not order by arrival/issue")
	}
}

func TestRoundTrip(t *testing.T) {
	w, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(w2.Jobs) != len(w.Jobs) || len(w2.Commands) != len(w.Commands) {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			len(w2.Jobs), len(w2.Commands), len(w.Jobs), len(w.Commands))
	}
	for i := range w.Jobs {
		a, b := w.Jobs[i], w2.Jobs[i]
		if a.ID != b.ID || a.Size != b.Size || a.Dur != b.Dur || a.Arrival != b.Arrival ||
			a.Class != b.Class || a.ReqStart != b.ReqStart {
			t.Errorf("job %d changed: %v vs %v", i, a, b)
		}
	}
	for i := range w.Commands {
		if w.Commands[i] != w2.Commands[i] {
			t.Errorf("command %d changed: %v vs %v", i, w.Commands[i], w2.Commands[i])
		}
	}
}

func TestFromSWF(t *testing.T) {
	log := &swf.Log{Header: []string{"h"}}
	good := swf.NewRecord(1)
	good.SubmitTime = 0
	good.ReqProcs = 4
	good.RunTime = 100
	incomplete := swf.NewRecord(2) // no procs, no runtime
	log.Records = append(log.Records, good, incomplete)
	w := FromSWF(log)
	if len(w.Jobs) != 1 || w.Jobs[0].ID != 1 {
		t.Fatalf("FromSWF kept %d jobs, want 1", len(w.Jobs))
	}
	if len(w.Header) != 1 {
		t.Error("header lost")
	}
}

func TestRecordToJobEstimateFallback(t *testing.T) {
	rec := Record{Record: swf.NewRecord(1), ReqStartTime: -1}
	rec.SubmitTime = 5
	rec.UsedProcs = 4
	rec.RunTime = 77
	j := RecordToJob(rec)
	if j.Size != 4 || j.Dur != 77 || j.Arrival != 5 || j.Class != job.Batch {
		t.Errorf("fallback conversion wrong: %+v", j)
	}
}

func TestJobToRecordDedicated(t *testing.T) {
	j := &job.Job{ID: 3, Size: 96, Dur: 60, Arrival: 10, ReqStart: 99, Class: job.Dedicated}
	rec := JobToRecord(j)
	if rec.ReqStartTime != 99 || rec.ReqProcs != 96 || rec.ReqTime != 60 || rec.Type != Submit {
		t.Errorf("JobToRecord wrong: %+v", rec)
	}
}

func TestFormatLineFieldCount(t *testing.T) {
	j := &job.Job{ID: 1, Size: 32, Dur: 10, Arrival: 0, ReqStart: -1}
	line := FormatLine(JobToRecord(j))
	if n := len(strings.Fields(line)); n != 21 {
		t.Errorf("formatted line has %d fields, want 21", n)
	}
}

func TestLoadDefinition(t *testing.T) {
	// One job using the whole machine for the whole span: load 1.
	w := &Workload{Jobs: []*job.Job{{ID: 1, Size: 320, Dur: 100, Arrival: 0, ReqStart: -1}}}
	if got := w.Load(320); got != 1 {
		t.Errorf("load = %g, want 1", got)
	}
	// Two such jobs back to back: area doubles, span doubles via arrival.
	w.Jobs = append(w.Jobs, &job.Job{ID: 2, Size: 320, Dur: 100, Arrival: 100, ReqStart: -1})
	if got := w.Load(320); got != 1 {
		t.Errorf("load = %g, want 1", got)
	}
	// Half-size jobs: load halves.
	for _, j := range w.Jobs {
		j.Size = 160
	}
	if got := w.Load(320); got != 0.5 {
		t.Errorf("load = %g, want 0.5", got)
	}
}

func TestLoadDegenerate(t *testing.T) {
	if (&Workload{}).Load(320) != 0 {
		t.Error("empty workload load should be 0")
	}
	w := &Workload{Jobs: []*job.Job{{ID: 1, Size: 32, Dur: 10, ReqStart: -1}}}
	if w.Load(0) != 0 {
		t.Error("zero machine load should be 0")
	}
}

func TestLoadAccountsDedicatedStart(t *testing.T) {
	// A dedicated job far in the future stretches the span.
	w := &Workload{Jobs: []*job.Job{
		{ID: 1, Size: 320, Dur: 100, Arrival: 0, ReqStart: -1},
		{ID: 2, Size: 320, Dur: 100, Arrival: 0, ReqStart: 300, Class: job.Dedicated},
	}}
	// span = 400 (0 .. 300+100), area = 2*320*100.
	want := float64(2*320*100) / (400 * 320)
	if got := w.Load(320); got != want {
		t.Errorf("load = %g, want %g", got, want)
	}
}

func TestCommandString(t *testing.T) {
	c := Command{JobID: 1, Issue: 2, Type: ExtendTime, Amount: 3}
	if c.String() == "" {
		t.Error("empty command string")
	}
}

func TestActualRuntimeRoundTrip(t *testing.T) {
	w := &Workload{Jobs: []*job.Job{
		{ID: 1, Size: 64, Dur: 200, Actual: 90, Arrival: 0, ReqStart: -1},
		{ID: 2, Size: 64, Dur: 100, Arrival: 5, ReqStart: -1},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	w2, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if w2.Jobs[0].Dur != 200 || w2.Jobs[0].Actual != 90 {
		t.Errorf("estimate/actual lost: dur=%d actual=%d", w2.Jobs[0].Dur, w2.Jobs[0].Actual)
	}
	if w2.Jobs[1].Dur != 100 || w2.Jobs[1].Actual != 0 {
		t.Errorf("exact job changed: dur=%d actual=%d", w2.Jobs[1].Dur, w2.Jobs[1].Actual)
	}
}

func TestRecordToJobSeparatesEstimateFromActual(t *testing.T) {
	rec := Record{Record: swf.NewRecord(1), ReqStartTime: -1}
	rec.SubmitTime = 0
	rec.ReqProcs = 8
	rec.ReqTime = 300 // user asked for 300s
	rec.RunTime = 120 // actually ran 120s
	j := RecordToJob(rec)
	if j.Dur != 300 || j.Actual != 120 {
		t.Errorf("dur=%d actual=%d, want 300, 120", j.Dur, j.Actual)
	}
}

func TestLoadUsesEffectiveRuntime(t *testing.T) {
	// Over-estimated job: load counts the actual 50s, not the 100s ask.
	w := &Workload{Jobs: []*job.Job{
		{ID: 1, Size: 320, Dur: 100, Actual: 50, Arrival: 0, ReqStart: -1},
	}}
	// Span still runs to arrival+dur (the kill-by horizon).
	want := float64(320*50) / float64(320*100)
	if got := w.Load(320); got != want {
		t.Errorf("load = %g, want %g", got, want)
	}
}

func TestWorkloadMaxNodes(t *testing.T) {
	w := &Workload{Header: []string{"MaxNodes: 320", "other"}}
	if w.MaxNodes() != 320 {
		t.Errorf("MaxNodes = %d, want 320", w.MaxNodes())
	}
	if (&Workload{}).MaxNodes() != 0 {
		t.Error("undeclared MaxNodes should be 0")
	}
}

func TestSizeCommandCount(t *testing.T) {
	w := &Workload{Commands: []Command{
		{Type: ExtendTime}, {Type: ExtendProc}, {Type: ReduceProc}, {Type: ReduceTime},
	}}
	if got := w.SizeCommandCount(); got != 2 {
		t.Errorf("SizeCommandCount = %d, want 2", got)
	}
}

func TestSortTieBreaksByID(t *testing.T) {
	w := &Workload{
		Jobs: []*job.Job{
			{ID: 5, Size: 32, Dur: 1, Arrival: 100, ReqStart: -1},
			{ID: 2, Size: 32, Dur: 1, Arrival: 100, ReqStart: -1},
		},
		Commands: []Command{
			{JobID: 5, Issue: 10, Type: ExtendTime, Amount: 1},
			{JobID: 2, Issue: 10, Type: ExtendTime, Amount: 1},
		},
	}
	w.Sort()
	if w.Jobs[0].ID != 2 || w.Commands[0].JobID != 2 {
		t.Error("equal-time entries should order by ID")
	}
}
