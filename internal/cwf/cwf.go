// Package cwf implements the paper's Cloud Workload Format (CWF, Figure 4):
// the Standard Workload Format extended with three fields that carry
// heterogeneous requests and runtime elasticity.
//
//	field 19: Requested Start Time — rigid start for dedicated/interactive
//	          jobs; -1 for batch jobs.
//	field 20: Request Type — S (submission), ET/RT (time extension/
//	          reduction), EP/RP (processor extension/reduction).
//	field 21: Extension/Reduction Amount — seconds for ET/RT, processors
//	          for EP/RP; -1 for submissions.
//
// ET/RT/EP/RP lines are Elastic Control Commands (ECCs): they reference a
// previously submitted job by its Job ID and request an on-the-fly change
// to its execution-time (or, as the paper's future-work extension, size)
// requirement. Field 2 of an ECC line is the command's issue time.
package cwf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"elastisched/internal/job"
	"elastisched/internal/swf"
)

// ReqType is CWF field 20.
type ReqType uint8

// Request types.
const (
	Submit     ReqType = iota // S: usual job submission
	ExtendTime                // ET: execution-time extension
	ReduceTime                // RT: execution-time reduction
	ExtendProc                // EP: processor extension (paper future work)
	ReduceProc                // RP: processor reduction (paper future work)
)

// String returns the CWF field-20 token.
func (t ReqType) String() string {
	switch t {
	case Submit:
		return "S"
	case ExtendTime:
		return "ET"
	case ReduceTime:
		return "RT"
	case ExtendProc:
		return "EP"
	case ReduceProc:
		return "RP"
	default:
		return fmt.Sprintf("ReqType(%d)", uint8(t))
	}
}

// ParseReqType parses a field-20 token.
func ParseReqType(s string) (ReqType, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "S":
		return Submit, nil
	case "ET":
		return ExtendTime, nil
	case "RT":
		return ReduceTime, nil
	case "EP":
		return ExtendProc, nil
	case "RP":
		return ReduceProc, nil
	default:
		return 0, fmt.Errorf("cwf: unknown request type %q", s)
	}
}

// IsECC reports whether the type is an Elastic Control Command (not a
// submission).
func (t ReqType) IsECC() bool { return t != Submit }

// Record is one CWF line: an SWF record plus fields 19-21, and the optional
// malleability bounds of fields 22-23.
type Record struct {
	swf.Record
	ReqStartTime int64   // 19: -1 for batch jobs
	Type         ReqType // 20
	Amount       int64   // 21: -1 for submissions
	// MinProcs and MaxProcs are the optional fields 22-23: the submission's
	// malleable processor bounds. Both zero (the fields absent) means the
	// job is rigid, so 18- and 21-field archives load unchanged.
	MinProcs int
	MaxProcs int
}

// Command is a parsed Elastic Control Command.
type Command struct {
	JobID  int
	Issue  int64 // when the user issues the command (field 2)
	Type   ReqType
	Amount int64 // seconds (ET/RT) or processors (EP/RP), > 0
}

// String renders the command compactly.
func (c Command) String() string {
	return fmt.Sprintf("ecc{job=%d t=%d %s %d}", c.JobID, c.Issue, c.Type, c.Amount)
}

// Workload is a parsed CWF file split into job submissions and the elastic
// control command stream, both in issue order.
type Workload struct {
	Header   []string
	Jobs     []*job.Job
	Commands []Command
}

// NumBatch returns the number of batch submissions.
func (w *Workload) NumBatch() int {
	n := 0
	for _, j := range w.Jobs {
		if j.Class == job.Batch {
			n++
		}
	}
	return n
}

// NumDedicated returns the number of dedicated submissions.
func (w *Workload) NumDedicated() int { return len(w.Jobs) - w.NumBatch() }

// MaxNodes returns the machine size declared in the trace header
// (MaxProcs/MaxNodes), or 0 when undeclared.
func (w *Workload) MaxNodes() int { return swf.MaxNodesFromHeader(w.Header) }

// SizeCommandCount returns the number of EP/RP (size elasticity) commands.
func (w *Workload) SizeCommandCount() int {
	n := 0
	for _, c := range w.Commands {
		if c.Type == ExtendProc || c.Type == ReduceProc {
			n++
		}
	}
	return n
}

// Validate checks all jobs against machine size m and that every command
// references a submitted job and has a positive amount. For jobs carrying
// explicit malleability bounds, EP/RP commands whose amount would push the
// submitted size outside [MinProcs, MaxProcs] are rejected up front — for
// unbounded jobs out-of-range elasticity stays a simulate-time concern (the
// engine clamps against the machine), preserving prior behaviour.
func (w *Workload) Validate(m int) error {
	ids := make(map[int]*job.Job, len(w.Jobs))
	for _, j := range w.Jobs {
		if err := j.Validate(m); err != nil {
			return err
		}
		if ids[j.ID] != nil {
			return fmt.Errorf("cwf: duplicate submission for job %d", j.ID)
		}
		ids[j.ID] = j
	}
	for _, c := range w.Commands {
		j := ids[c.JobID]
		if j == nil {
			return fmt.Errorf("cwf: %v references unknown job", c)
		}
		if c.Amount <= 0 {
			return fmt.Errorf("cwf: %v has non-positive amount", c)
		}
		if !c.Type.IsECC() {
			return fmt.Errorf("cwf: %v is not an ECC", c)
		}
		if j.MaxProcs > 0 {
			switch c.Type {
			case ExtendProc:
				if int64(j.Size)+c.Amount > int64(j.MaxProcs) {
					return fmt.Errorf("cwf: %v grows job %d beyond its max procs %d (size %d)",
						c, j.ID, j.MaxProcs, j.Size)
				}
			case ReduceProc:
				if int64(j.Size)-c.Amount < int64(j.MinProcs) {
					return fmt.Errorf("cwf: %v shrinks job %d below its min procs %d (size %d)",
						c, j.ID, j.MinProcs, j.Size)
				}
			}
		}
	}
	return nil
}

// ParseLine parses a 21-field CWF line. 18-field lines are accepted as plain
// SWF submissions (batch, no ECC), so archive logs load unchanged; 23-field
// lines additionally carry the malleability bounds (fields 22-23).
func ParseLine(line string) (Record, error) {
	tok := strings.Fields(line)
	base, err := swf.ParseFields(tok)
	if err != nil {
		return Record{}, err
	}
	rec := Record{Record: base, ReqStartTime: -1, Type: Submit, Amount: -1}
	if len(tok) == 18 {
		return rec, nil
	}
	if len(tok) != 21 && len(tok) != 23 {
		return Record{}, fmt.Errorf("cwf: %d fields, want 18 (SWF), 21 (CWF) or 23 (CWF+bounds)", len(tok))
	}
	rst, err := strconv.ParseInt(tok[18], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("cwf: field 19 %q: %v", tok[18], err)
	}
	rec.ReqStartTime = rst
	rec.Type, err = ParseReqType(tok[19])
	if err != nil {
		return Record{}, err
	}
	amt, err := strconv.ParseInt(tok[20], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("cwf: field 21 %q: %v", tok[20], err)
	}
	rec.Amount = amt
	if len(tok) == 23 {
		mn, err := strconv.Atoi(tok[21])
		if err != nil {
			return Record{}, fmt.Errorf("cwf: field 22 %q: %v", tok[21], err)
		}
		mx, err := strconv.Atoi(tok[22])
		if err != nil {
			return Record{}, fmt.Errorf("cwf: field 23 %q: %v", tok[22], err)
		}
		rec.MinProcs, rec.MaxProcs = mn, mx
	}
	return rec, nil
}

// FormatLine renders a record as a CWF line: 21 fields, or 23 when the
// record carries malleability bounds (so bound-free workloads round-trip
// byte-identically with the pre-bounds format).
func FormatLine(r Record) string {
	fields := r.Fields()
	parts := make([]string, 0, 23)
	for _, f := range fields {
		parts = append(parts, strconv.FormatInt(f, 10))
	}
	parts = append(parts,
		strconv.FormatInt(r.ReqStartTime, 10),
		r.Type.String(),
		strconv.FormatInt(r.Amount, 10))
	if r.MaxProcs > 0 {
		parts = append(parts, strconv.Itoa(r.MinProcs), strconv.Itoa(r.MaxProcs))
	}
	return strings.Join(parts, " ")
}

// Parse reads a CWF stream into a Workload. Submission lines become jobs;
// ET/RT/EP/RP lines become commands. Jobs are ordered by arrival and
// commands by issue time, matching the FCFS elastic control queue.
func Parse(r io.Reader) (*Workload, error) {
	w := &Workload{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			w.Header = append(w.Header, strings.TrimSpace(strings.TrimPrefix(line, ";")))
			continue
		}
		rec, err := ParseLine(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		if rec.Type.IsECC() {
			w.Commands = append(w.Commands, Command{
				JobID: rec.JobID, Issue: rec.SubmitTime, Type: rec.Type, Amount: rec.Amount,
			})
			continue
		}
		w.Jobs = append(w.Jobs, RecordToJob(rec))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	w.Sort()
	return w, nil
}

// RecordToJob converts a submission record to the scheduler job model. The
// user estimate (field 9) becomes the planning duration; the recorded
// actual runtime (field 4), when it differs, becomes the job's true
// execution time — so archive replays get genuine estimate inaccuracy.
func RecordToJob(rec Record) *job.Job {
	j := &job.Job{
		ID:       rec.JobID,
		Size:     rec.Processors(),
		Dur:      rec.Estimate(),
		Arrival:  rec.SubmitTime,
		ReqStart: -1,
		Class:    job.Batch,
	}
	if rec.RunTime > 0 && rec.RunTime != j.Dur {
		j.Actual = rec.RunTime
	}
	if rec.ReqStartTime >= 0 {
		j.Class = job.Dedicated
		j.ReqStart = rec.ReqStartTime
	}
	if rec.MaxProcs > 0 {
		j.MinProcs = rec.MinProcs
		j.MaxProcs = rec.MaxProcs
	}
	return j
}

// JobToRecord converts a job back to a CWF submission record.
func JobToRecord(j *job.Job) Record {
	base := swf.NewRecord(j.ID)
	base.SubmitTime = j.Arrival
	base.RunTime = j.Dur
	if j.Actual > 0 {
		base.RunTime = j.Actual
	}
	base.ReqTime = j.Dur
	base.ReqProcs = j.Size
	base.UsedProcs = j.Size
	base.Status = 1
	rec := Record{Record: base, ReqStartTime: -1, Type: Submit, Amount: -1}
	if j.Class == job.Dedicated {
		rec.ReqStartTime = j.ReqStart
	}
	if j.MaxProcs > 0 {
		rec.MinProcs = j.MinProcs
		rec.MaxProcs = j.MaxProcs
	}
	return rec
}

// Sort orders jobs by (arrival, ID) and commands by (issue, jobID), the
// orders in which the engine injects them.
func (w *Workload) Sort() {
	sort.SliceStable(w.Jobs, func(i, k int) bool {
		if w.Jobs[i].Arrival != w.Jobs[k].Arrival {
			return w.Jobs[i].Arrival < w.Jobs[k].Arrival
		}
		return w.Jobs[i].ID < w.Jobs[k].ID
	})
	sort.SliceStable(w.Commands, func(i, k int) bool {
		if w.Commands[i].Issue != w.Commands[k].Issue {
			return w.Commands[i].Issue < w.Commands[k].Issue
		}
		return w.Commands[i].JobID < w.Commands[k].JobID
	})
}

// Write emits the workload as CWF text: header, submissions and ECCs merged
// in time order.
func Write(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	for _, h := range wl.Header {
		if _, err := fmt.Fprintf(bw, "; %s\n", h); err != nil {
			return err
		}
	}
	type line struct {
		t    int64
		id   int
		text string
	}
	lines := make([]line, 0, len(wl.Jobs)+len(wl.Commands))
	for _, j := range wl.Jobs {
		lines = append(lines, line{j.Arrival, j.ID, FormatLine(JobToRecord(j))})
	}
	for _, c := range wl.Commands {
		base := swf.NewRecord(c.JobID)
		base.SubmitTime = c.Issue
		rec := Record{Record: base, ReqStartTime: -1, Type: c.Type, Amount: c.Amount}
		lines = append(lines, line{c.Issue, c.JobID, FormatLine(rec)})
	}
	sort.SliceStable(lines, func(i, k int) bool {
		if lines[i].t != lines[k].t {
			return lines[i].t < lines[k].t
		}
		return lines[i].id < lines[k].id
	})
	for _, l := range lines {
		if _, err := fmt.Fprintln(bw, l.text); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FromSWF wraps a plain SWF log as a CWF workload with no dedicated jobs
// and no ECCs.
func FromSWF(log *swf.Log) *Workload {
	w := &Workload{Header: log.Header}
	for _, rec := range log.Records {
		if rec.Processors() <= 0 || rec.Estimate() <= 0 || rec.SubmitTime < 0 {
			continue // incomplete archive lines are conventionally skipped
		}
		w.Jobs = append(w.Jobs, RecordToJob(Record{Record: rec, ReqStartTime: -1, Type: Submit, Amount: -1}))
	}
	w.Sort()
	return w
}

// Load returns the offered load of the workload on a machine of size m,
// using the paper's definition: sum over jobs of size*runtime, divided by
// the workload's duration (first arrival to last possible completion) times
// the machine size.
func (w *Workload) Load(m int) float64 {
	if len(w.Jobs) == 0 || m <= 0 {
		return 0
	}
	var area float64
	first := w.Jobs[0].Arrival
	last := first
	for _, j := range w.Jobs {
		area += float64(j.Size) * float64(j.EffectiveRuntime())
		end := j.Arrival + j.Dur
		if j.Class == job.Dedicated && j.ReqStart > j.Arrival {
			end = j.ReqStart + j.Dur
		}
		if end > last {
			last = end
		}
		if j.Arrival < first {
			first = j.Arrival
		}
	}
	dur := float64(last - first)
	if dur <= 0 {
		return 0
	}
	return area / (dur * float64(m))
}
