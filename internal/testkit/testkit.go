// Package testkit provides a miniature scheduling harness for tests that
// need to drive scheduler policies cycle by cycle without the full engine:
// a machine, the three queues, and a fixed-point cycle driver whose Start
// callback allocates the machine and tracks dispatch order.
package testkit

import (
	"fmt"

	"elastisched/internal/job"
	"elastisched/internal/machine"
	"elastisched/internal/sched"
)

// Harness is a single-instant scheduling fixture.
type Harness struct {
	Now  int64
	Mach *machine.Machine

	Batch  *job.BatchQueue
	Ded    *job.DedicatedQueue
	Active *job.ActiveList

	Started []*job.Job
}

// New returns a harness over an m-processor machine with the given unit.
func New(m, unit int) *Harness {
	return &Harness{
		Mach:   machine.New(m, unit),
		Batch:  job.NewBatchQueue(),
		Ded:    job.NewDedicatedQueue(),
		Active: job.NewActiveList(),
	}
}

// NewContiguous returns a harness whose machine requires contiguous
// node-group allocations.
func NewContiguous(m, unit int) *Harness {
	h := New(m, unit)
	h.Mach = machine.NewContiguous(m, unit)
	return h
}

// AddBatch queues a waiting batch job.
func (h *Harness) AddBatch(id, size int, dur int64) *job.Job {
	j := &job.Job{ID: id, Size: size, Dur: dur, ReqStart: -1, Class: job.Batch, LastSkip: -1}
	h.Batch.Push(j)
	return j
}

// AddDed queues a waiting dedicated job with a rigid start time.
func (h *Harness) AddDed(id, size int, dur, start int64) *job.Job {
	j := &job.Job{ID: id, Size: size, Dur: dur, ReqStart: start, Class: job.Dedicated, LastSkip: -1}
	h.Ded.Push(j)
	return j
}

// AddRunning places a job on the machine ending at end.
func (h *Harness) AddRunning(id, size int, end int64) *job.Job {
	j := &job.Job{ID: id, Size: size, Dur: end - h.Now, ReqStart: -1, Class: job.Batch,
		State: job.Running, EndTime: end}
	if err := h.Mach.Alloc(id, size); err != nil {
		panic(fmt.Sprintf("testkit: %v", err))
	}
	h.Active.Insert(j)
	return j
}

// Ctx builds a fresh scheduling context at the current instant.
func (h *Harness) Ctx() *sched.Context {
	c := &sched.Context{
		Now:       h.Now,
		Machine:   h.Mach,
		Batch:     h.Batch,
		Dedicated: h.Ded,
		Active:    h.Active,
	}
	c.StartFn = func(j *job.Job) bool {
		if err := h.Mach.Alloc(j.ID, j.Size); err != nil {
			if h.Mach.Contiguous() {
				return false
			}
			panic(fmt.Sprintf("testkit start: %v", err))
		}
		j.State = job.Running
		j.StartTime = h.Now
		j.EndTime = h.Now + j.Dur
		h.Active.Insert(j)
		h.Started = append(h.Started, j)
		return true
	}
	return c
}

// Cycle invokes the scheduler to a fixed point, as the engine does, and
// returns the jobs started this instant in dispatch order.
func (h *Harness) Cycle(s sched.Scheduler) []*job.Job {
	h.Started = nil
	for i := 0; ; i++ {
		if i > 10000 {
			panic("testkit: scheduler livelock")
		}
		c := h.Ctx()
		s.Schedule(c)
		if !c.Progress {
			break
		}
	}
	return h.Started
}

// Once invokes the scheduler exactly one cycle (no fixed point) and reports
// whether it made progress.
func (h *Harness) Once(s sched.Scheduler) bool {
	c := h.Ctx()
	s.Schedule(c)
	return c.Progress
}

// StartedIDs returns the IDs started by the last Cycle, in order.
func (h *Harness) StartedIDs() []int {
	out := make([]int, 0, len(h.Started))
	for _, j := range h.Started {
		out = append(out, j.ID)
	}
	return out
}

// Complete retires a running job at time t, freeing its processors.
func (h *Harness) Complete(j *job.Job, t int64) {
	if err := h.Mach.Release(j.ID); err != nil {
		panic(fmt.Sprintf("testkit complete: %v", err))
	}
	h.Active.Remove(j)
	j.State = job.Finished
	j.FinishTime = t
	if t > h.Now {
		h.Now = t
	}
}
