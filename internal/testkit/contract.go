package testkit

import (
	"testing"

	"elastisched/internal/audit"
	"elastisched/internal/engine"
	"elastisched/internal/sched"
	"elastisched/internal/trace"
	"elastisched/internal/workload"
)

// ContractOptions configure CheckSchedulerContract.
type ContractOptions struct {
	// Heterogeneous feeds dedicated jobs (requires a -D-capable policy).
	Heterogeneous bool
	// Elastic injects ET/RT commands and attaches the ECC processor.
	Elastic bool
	// Seeds to run (default 1..2); N jobs per run (default 120).
	Seeds []int64
	N     int
}

// CheckSchedulerContract runs a policy through the scheduler contract: on
// randomized workloads at realistic load it must finish every job, keep the
// machine invariants at every instant, and produce a schedule the
// independent auditor accepts. Use it as the one-call test for any new
// policy implementation:
//
//	func TestMyPolicyContract(t *testing.T) {
//	    testkit.CheckSchedulerContract(t, func() sched.Scheduler { return NewMyPolicy() },
//	        testkit.ContractOptions{})
//	}
func CheckSchedulerContract(t *testing.T, mk func() sched.Scheduler, opt ContractOptions) {
	t.Helper()
	seeds := opt.Seeds
	if len(seeds) == 0 {
		seeds = []int64{1, 2}
	}
	n := opt.N
	if n <= 0 {
		n = 120
	}
	for _, seed := range seeds {
		for _, load := range []float64{0.7, 1.0} {
			p := workload.DefaultParams()
			p.Seed = seed
			p.N = n
			p.TargetLoad = load
			if opt.Heterogeneous {
				p.PD = 0.4
			}
			if opt.Elastic {
				p.PE, p.PR = 0.2, 0.1
			}
			w, err := workload.Generate(p)
			if err != nil {
				t.Fatalf("contract: %v", err)
			}
			s := mk()
			if opt.Heterogeneous && !s.Heterogeneous() {
				t.Fatalf("contract: policy %s is batch-only but Heterogeneous was requested", s.Name())
			}
			rec := trace.NewRecorder(p.M, p.Unit)
			r, err := engine.Run(w, engine.Config{
				M: p.M, Unit: p.Unit, Scheduler: s,
				ProcessECC: opt.Elastic, Paranoid: true, Observer: rec,
			})
			if err != nil {
				t.Fatalf("contract: seed %d load %.1f: %v", seed, load, err)
			}
			if r.Summary.JobsFinished != n {
				t.Fatalf("contract: seed %d load %.1f: finished %d/%d", seed, load, r.Summary.JobsFinished, n)
			}
			rep := audit.Check(w, rec.Spans(), audit.Options{
				M: p.M, Unit: p.Unit, Elastic: opt.Elastic,
			})
			if err := rep.Error(); err != nil {
				t.Fatalf("contract: seed %d load %.1f: %v", seed, load, err)
			}
		}
	}
}
