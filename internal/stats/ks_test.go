package stats

import (
	"math"
	"math/rand"
	"testing"

	"elastisched/internal/dist"
)

func TestRegIncGammaKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^-x.
	for _, x := range []float64{0.5, 1, 3} {
		approx(t, RegIncGamma(1, x), 1-math.Exp(-x), 1e-10, "P(1,x)")
	}
	// P(a, 0) = 0; large x -> 1.
	if RegIncGamma(2, 0) != 0 {
		t.Error("P(2,0) != 0")
	}
	approx(t, RegIncGamma(2, 100), 1, 1e-10, "P(2,100)")
	// Chi-squared identity: P(1/2, x/2) at x=3.841 (95th pct of chi2_1).
	approx(t, RegIncGamma(0.5, 3.841/2), 0.95, 5e-4, "chi2 95th pct")
	if !math.IsNaN(RegIncGamma(-1, 1)) {
		t.Error("negative shape should be NaN")
	}
}

func TestGammaCDFMedian(t *testing.T) {
	// Median of Gamma(1, b) is b*ln 2.
	approx(t, GammaCDF(1, 3, 3*math.Ln2), 0.5, 1e-10, "exp median")
	// CDF is monotone and within [0,1].
	prev := 0.0
	for x := 0.0; x <= 50; x += 0.5 {
		v := GammaCDF(4.2, 0.94, x)
		if v < prev-1e-12 || v < 0 || v > 1 {
			t.Fatalf("GammaCDF not monotone in [0,1] at %g: %g", x, v)
		}
		prev = v
	}
}

func TestKSOneSampleMatchingDistribution(t *testing.T) {
	// Gamma samples against their own CDF: p should not be tiny.
	r := rand.New(rand.NewSource(8))
	g := dist.Gamma{Alpha: 4.2, Beta: 0.94}
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = g.Sample(r)
	}
	d, p, err := KSOneSample(xs, func(x float64) float64 { return GammaCDF(4.2, 0.94, x) })
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.05 {
		t.Errorf("KS D = %g too large for matching distribution", d)
	}
	if p < 0.01 {
		t.Errorf("KS p = %g rejects its own distribution", p)
	}
}

func TestKSOneSampleMismatchedDistribution(t *testing.T) {
	// Exponential samples against a Gamma(4.2,.94) CDF: strongly rejected.
	r := rand.New(rand.NewSource(9))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	_, p, err := KSOneSample(xs, func(x float64) float64 { return GammaCDF(4.2, 0.94, x) })
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("KS p = %g fails to reject a wrong distribution", p)
	}
}

func TestKSTwoSample(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	g := dist.Gamma{Alpha: 3, Beta: 2}
	a := make([]float64, 1500)
	b := make([]float64, 1500)
	c := make([]float64, 1500)
	for i := range a {
		a[i] = g.Sample(r)
		b[i] = g.Sample(r)
		c[i] = g.Sample(r) + 2 // shifted
	}
	_, pSame, err := KSTwoSample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if pSame < 0.01 {
		t.Errorf("two-sample KS rejects identical distributions: p=%g", pSame)
	}
	_, pDiff, err := KSTwoSample(a, c)
	if err != nil {
		t.Fatal(err)
	}
	if pDiff > 1e-6 {
		t.Errorf("two-sample KS misses a shift: p=%g", pDiff)
	}
}

func TestKSErrorsAndBounds(t *testing.T) {
	if _, _, err := KSOneSample(nil, func(float64) float64 { return 0 }); err == nil {
		t.Error("empty sample accepted")
	}
	if _, _, err := KSTwoSample(nil, []float64{1}); err == nil {
		t.Error("empty two-sample accepted")
	}
	if ksPValue(0) != 1 {
		t.Error("lambda=0 should give p=1")
	}
	if p := ksPValue(5); p < 0 || p > 1e-10 {
		t.Errorf("huge lambda p = %g", p)
	}
	if Clamp01(-1) != 0 || Clamp01(2) != 1 || Clamp01(0.5) != 0.5 {
		t.Error("Clamp01 wrong")
	}
}
