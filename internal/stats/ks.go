package stats

import (
	"errors"
	"math"
	"sort"
)

// RegIncGamma is the regularized lower incomplete gamma function P(a, x),
// via the series expansion for x < a+1 and the Lentz continued fraction for
// the complement otherwise (Numerical Recipes 6.2).
func RegIncGamma(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x <= 0:
		return 0
	case x < a+1:
		return gammaSeries(a, x)
	default:
		return 1 - gammaCF(a, x)
	}
}

// gammaSeries evaluates P(a,x) by its series representation.
func gammaSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for n := 0; n < 500; n++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaCF evaluates Q(a,x) = 1-P(a,x) by continued fraction.
func gammaCF(a, x float64) float64 {
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// GammaCDF is the CDF of a Gamma(alpha, beta) distribution (shape alpha,
// scale beta) at x.
func GammaCDF(alpha, beta, x float64) float64 {
	if x <= 0 {
		return 0
	}
	return RegIncGamma(alpha, x/beta)
}

// KSOneSample computes the Kolmogorov-Smirnov statistic D between a sample
// and a theoretical CDF, and the asymptotic p-value — the goodness-of-fit
// check the paper's workload-model source (Lublin & Feitelson) employs.
func KSOneSample(sample []float64, cdf func(float64) float64) (d, p float64, err error) {
	n := len(sample)
	if n == 0 {
		return 0, 0, errors.New("stats: KS on empty sample")
	}
	xs := append([]float64(nil), sample...)
	sort.Float64s(xs)
	for i, x := range xs {
		f := cdf(x)
		lo := f - float64(i)/float64(n)
		hi := float64(i+1)/float64(n) - f
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	en := math.Sqrt(float64(n))
	return d, ksPValue((en + 0.12 + 0.11/en) * d), nil
}

// KSTwoSample computes the two-sample KS statistic and asymptotic p-value.
func KSTwoSample(a, b []float64) (d, p float64, err error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, 0, errors.New("stats: KS on empty sample")
	}
	xs := append([]float64(nil), a...)
	ys := append([]float64(nil), b...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	var i, j int
	for i < len(xs) && j < len(ys) {
		x1, x2 := xs[i], ys[j]
		if x1 <= x2 {
			i++
		}
		if x2 <= x1 {
			j++
		}
		if diff := math.Abs(float64(i)/float64(len(xs)) - float64(j)/float64(len(ys))); diff > d {
			d = diff
		}
	}
	en := math.Sqrt(float64(len(xs)) * float64(len(ys)) / float64(len(xs)+len(ys)))
	return d, ksPValue((en + 0.12 + 0.11/en) * d), nil
}

// ksPValue is the asymptotic Kolmogorov distribution complement
// Q_KS(lambda) = 2 sum_{k>=1} (-1)^{k-1} e^{-2 k^2 lambda^2}.
func ksPValue(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	a2 := -2 * lambda * lambda
	sum := 0.0
	sign := 1.0
	prev := 0.0
	for k := 1; k <= 100; k++ {
		term := sign * math.Exp(a2*float64(k)*float64(k))
		sum += term
		if math.Abs(term) <= 1e-12*math.Abs(prev) || math.Abs(term) < 1e-14 {
			break
		}
		prev = term
		sign = -sign
	}
	p := 2 * sum
	return Clamp01(p)
}

// Clamp01 bounds v to [0, 1].
func Clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
