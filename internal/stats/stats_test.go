package stats

import (
	"math"
	"math/rand"
	"testing"
)

func approx(t *testing.T, got, want, tol float64, what string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %g, want %g (±%g)", what, got, want, tol)
	}
}

func TestMoments(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, Mean(xs), 5, 1e-12, "mean")
	approx(t, Variance(xs), 32.0/7, 1e-12, "variance")
	approx(t, StdDev(xs), math.Sqrt(32.0/7), 1e-12, "stddev")
	approx(t, StdErr(xs), math.Sqrt(32.0/7/8), 1e-12, "stderr")
}

func TestMomentsDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{3}) != 0 || StdErr(nil) != 0 {
		t.Error("degenerate moments not zero")
	}
}

func TestRegIncBetaKnownValues(t *testing.T) {
	// I_x(1,1) = x.
	for _, x := range []float64{0.1, 0.5, 0.9} {
		approx(t, RegIncBeta(1, 1, x), x, 1e-10, "I_x(1,1)")
	}
	// I_x(2,2) = x^2 (3 - 2x).
	approx(t, RegIncBeta(2, 2, 0.3), 0.3*0.3*(3-0.6), 1e-10, "I_.3(2,2)")
	// Boundaries.
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	approx(t, RegIncBeta(2.5, 1.5, 0.4), 1-RegIncBeta(1.5, 2.5, 0.6), 1e-10, "symmetry")
}

func TestTCDFKnownValues(t *testing.T) {
	// Standard t-table values.
	approx(t, TCDF(0, 10), 0.5, 1e-10, "TCDF(0,10)")
	// t distribution with dof=1 is Cauchy: CDF(1) = 3/4.
	approx(t, TCDF(1, 1), 0.75, 1e-8, "TCDF(1,1)")
	// dof=10, t=2.228 is the 97.5th percentile.
	approx(t, TCDF(2.228, 10), 0.975, 5e-4, "TCDF(2.228,10)")
	// Large dof approaches the normal: CDF(1.96) ~ 0.975.
	approx(t, TCDF(1.96, 1e6), 0.975, 1e-3, "TCDF(1.96,inf)")
	// Symmetry.
	approx(t, TCDF(-1.5, 7)+TCDF(1.5, 7), 1, 1e-10, "symmetry")
}

func TestTInvInvertsTCDF(t *testing.T) {
	for _, dof := range []float64{1, 5, 30} {
		for _, p := range []float64{0.6, 0.9, 0.975, 0.995} {
			q := TInv(p, dof)
			approx(t, TCDF(q, dof), p, 1e-9, "TCDF(TInv(p))")
		}
	}
	// Classic critical value: t_{0.975, 10} = 2.2281.
	approx(t, TInv(0.975, 10), 2.2281, 1e-3, "t crit 10 dof")
	if !math.IsNaN(TInv(0, 5)) || !math.IsNaN(TInv(1, 5)) {
		t.Error("TInv boundary should be NaN")
	}
}

func TestCI95CoversTrueMean(t *testing.T) {
	// Repeated normal samples: the 95% CI should cover the true mean in
	// roughly 95% of trials.
	r := rand.New(rand.NewSource(6))
	covered := 0
	trials := 400
	for i := 0; i < trials; i++ {
		xs := make([]float64, 10)
		for k := range xs {
			xs[k] = 3 + r.NormFloat64()
		}
		lo, hi := CI95(xs)
		if lo <= 3 && 3 <= hi {
			covered++
		}
	}
	rate := float64(covered) / float64(trials)
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("coverage %.3f, want ~0.95", rate)
	}
}

func TestCI95Degenerate(t *testing.T) {
	lo, hi := CI95([]float64{7})
	if lo != 7 || hi != 7 {
		t.Error("single-sample CI should collapse")
	}
}

func TestWelchIdenticalGroups(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	p, err := WelchP(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.99 {
		t.Errorf("p = %g for identical groups, want ~1", p)
	}
}

func TestWelchSeparatedGroups(t *testing.T) {
	a := []float64{10, 11, 9, 10.5, 9.5, 10.2}
	b := []float64{20, 21, 19, 20.5, 19.5, 20.2}
	p, err := WelchP(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Errorf("p = %g for clearly separated groups", p)
	}
	tstat, dof, _ := Welch(a, b)
	if tstat >= 0 {
		t.Errorf("t = %g, want negative (a < b)", tstat)
	}
	if dof < 5 || dof > 10.5 {
		t.Errorf("Welch dof = %g out of plausible range", dof)
	}
}

func TestWelchKnownExample(t *testing.T) {
	// Classic Welch example (e.g. Wikipedia's A1/B1-style data): verify
	// against an independently computed value.
	a := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	b := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.0, 23.9}
	tstat, dof, err := Welch(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Reference values computed independently (Python statistics module).
	approx(t, tstat, -2.83526, 1e-4, "Welch t")
	approx(t, dof, 27.7136, 1e-3, "Welch dof")
}

func TestWelchTooFewSamples(t *testing.T) {
	if _, _, err := Welch([]float64{1}, []float64{2, 3}); err == nil {
		t.Error("tiny sample accepted")
	}
}

func TestPairedTIdentical(t *testing.T) {
	a := []float64{1, 2, 3}
	p, err := PairedT(a, a)
	if err != nil || p != 1 {
		t.Errorf("identical paired p = %g, %v", p, err)
	}
}

func TestPairedTConstantShift(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 3, 4, 5}
	p, err := PairedT(a, b)
	if err != nil || p != 0 {
		t.Errorf("constant-shift paired p = %g, %v (zero variance in diffs)", p, err)
	}
}

func TestPairedTDetectsConsistentWin(t *testing.T) {
	// Target consistently ~10% below baseline with noise: small p.
	r := rand.New(rand.NewSource(7))
	n := 12
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := 100 + 10*r.NormFloat64()
		b[i] = base
		a[i] = 0.9*base + 0.5*r.NormFloat64()
	}
	p, err := PairedT(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.01 {
		t.Errorf("paired p = %g for consistent 10%% win", p)
	}
}

func TestPairedTErrors(t *testing.T) {
	if _, err := PairedT([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := PairedT([]float64{1}, []float64{1}); err == nil {
		t.Error("single pair accepted")
	}
}
