// Package stats provides the small statistical toolkit the experiment
// harness uses to report uncertainty: sample moments, Student-t confidence
// intervals, and paired/Welch t-tests. The paper plots single simulation
// runs per point; this reproduction averages seeds and can attach 95%
// intervals and significance to every comparison.
package stats

import (
	"errors"
	"math"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var t float64
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// StdErr returns the standard error of the mean.
func StdErr(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return StdDev(xs) / math.Sqrt(float64(len(xs)))
}

// CI95 returns the two-sided 95% Student-t confidence interval for the
// mean. With fewer than two samples the interval collapses to the point.
func CI95(xs []float64) (lo, hi float64) {
	m := Mean(xs)
	if len(xs) < 2 {
		return m, m
	}
	half := TInv(0.975, float64(len(xs)-1)) * StdErr(xs)
	return m - half, m + half
}

// Welch performs Welch's unequal-variance t-test between two samples,
// returning the t statistic and the Welch–Satterthwaite degrees of freedom.
func Welch(a, b []float64) (t, dof float64, err error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 0, errors.New("stats: Welch needs at least two samples per group")
	}
	va := Variance(a) / float64(len(a))
	vb := Variance(b) / float64(len(b))
	if va+vb == 0 {
		return 0, 1, nil
	}
	t = (Mean(a) - Mean(b)) / math.Sqrt(va+vb)
	dof = (va + vb) * (va + vb) /
		(va*va/float64(len(a)-1) + vb*vb/float64(len(b)-1))
	return t, dof, nil
}

// WelchP returns the two-sided p-value of Welch's t-test.
func WelchP(a, b []float64) (float64, error) {
	t, dof, err := Welch(a, b)
	if err != nil {
		return 0, err
	}
	return twoSidedP(t, dof), nil
}

// PairedT performs a paired t-test on the differences a[i]-b[i] (e.g. the
// same workload simulated under two schedulers) and returns the two-sided
// p-value. Identical samples give p = 1.
func PairedT(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: paired samples must have equal length")
	}
	if len(a) < 2 {
		return 0, errors.New("stats: paired test needs at least two pairs")
	}
	d := make([]float64, len(a))
	for i := range a {
		d[i] = a[i] - b[i]
	}
	se := StdErr(d)
	if se == 0 {
		if Mean(d) == 0 {
			return 1, nil
		}
		return 0, nil
	}
	t := Mean(d) / se
	return twoSidedP(t, float64(len(d)-1)), nil
}

func twoSidedP(t, dof float64) float64 {
	p := 2 * (1 - TCDF(math.Abs(t), dof))
	if p > 1 {
		p = 1
	}
	if p < 0 {
		p = 0
	}
	return p
}

// TCDF is the cumulative distribution function of Student's t with dof
// degrees of freedom, evaluated via the regularized incomplete beta
// function.
func TCDF(t, dof float64) float64 {
	if dof <= 0 {
		return math.NaN()
	}
	x := dof / (dof + t*t)
	ib := RegIncBeta(dof/2, 0.5, x)
	if t > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// TInv returns the p-quantile of Student's t with dof degrees of freedom,
// by bisection on TCDF (sufficient for harness use).
func TInv(p, dof float64) float64 {
	if p <= 0 || p >= 1 {
		return math.NaN()
	}
	lo, hi := -1e6, 1e6
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, dof) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// RegIncBeta is the regularized incomplete beta function I_x(a, b),
// computed with the Lentz continued fraction (Numerical Recipes 6.4).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := float64(2 * m)
		aa := float64(m) * (b - float64(m)) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
