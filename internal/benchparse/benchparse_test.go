package benchparse

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: elastisched/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkBasicDP-4         	16438834	        72.09 ns/op	       0 B/op	       0 allocs/op
BenchmarkReservationDP-4   	15740254	        76.33 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	elastisched/internal/core	2.661s
goos: linux
goarch: amd64
pkg: elastisched/internal/sched
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkProfileBuild64    	  234837	      4932 ns/op	    1216 B/op	       3 allocs/op
PASS
ok  	elastisched/internal/sched	1.001s
`

func TestParseBench(t *testing.T) {
	benches, env, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatalf("parseBench: %v", err)
	}
	if env.GOOS != "linux" || env.GOARCH != "amd64" || !strings.Contains(env.CPU, "Xeon") {
		t.Errorf("env = %+v", env)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(benches), benches)
	}
	b := benches[0]
	if b.Name != "BenchmarkBasicDP" || b.Pkg != "elastisched/internal/core" {
		t.Errorf("first bench = %+v", b)
	}
	if b.NsPerOp != 72.09 || b.BytesPerOp != 0 || b.AllocsPerOp != 0 || b.Iterations != 16438834 {
		t.Errorf("first bench numbers = %+v", b)
	}
	p := benches[2]
	if p.Pkg != "elastisched/internal/sched" || p.NsPerOp != 4932 || p.BytesPerOp != 1216 || p.AllocsPerOp != 3 {
		t.Errorf("profile bench = %+v", p)
	}
}

func TestParseBenchLineVariants(t *testing.T) {
	// No -procs suffix (GOMAXPROCS=1) and no -benchmem columns.
	b, ok := parseBenchLine("BenchmarkX 100 5.0 ns/op", "p")
	if !ok || b.Name != "BenchmarkX" || b.NsPerOp != 5.0 {
		t.Errorf("plain line: %+v ok=%v", b, ok)
	}
	// A name whose trailing segment is not a number keeps its dash.
	b, _ = parseBenchLine("BenchmarkA-b-4 100 5.0 ns/op", "p")
	if b.Name != "BenchmarkA-b" {
		t.Errorf("suffix strip: %q", b.Name)
	}
	// Non-result lines are rejected.
	if _, ok := parseBenchLine("BenchmarkX", "p"); ok {
		t.Error("bare name accepted")
	}
	if _, ok := parseBenchLine("BenchmarkX 100 garbage ns/op", "p"); ok {
		t.Error("garbage value accepted")
	}
	if _, ok := parseBenchLine("BenchmarkX 100 5 bogounits extra", "p"); ok {
		t.Error("line without ns/op accepted")
	}
}
