// Package benchparse parses raw `go test -bench -benchmem` output into
// structured measurements. It is shared by cmd/benchjson (which snapshots
// numbers into BENCH_<date>.json files) and cmd/benchgate (which compares
// fresh runs against a committed snapshot).
package benchparse

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// Bench is one benchmark measurement as emitted by `go test -bench`.
type Bench struct {
	Name        string  `json:"name"`
	Pkg         string  `json:"pkg"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iterations  int64   `json:"iterations"`
	// Metrics holds custom b.ReportMetric columns (e.g. "jobs/sec",
	// "wl-generated/op") keyed by their unit string.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Env captures the machine identification lines of the bench output.
type Env struct {
	Go     string `json:"go"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	CPU    string `json:"cpu"`
}

// Parse reads raw `go test -bench -benchmem` output: goos/goarch/
// cpu/pkg header lines set the environment and package attribution, and
// each Benchmark line becomes one Bench. The GOMAXPROCS suffix
// (BenchmarkFoo-8) is stripped from names so snapshots from machines
// with different core counts stay comparable.
func Parse(r io.Reader) ([]Bench, Env, error) {
	var (
		out []Bench
		env Env
		pkg string
	)
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			env.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			env.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			env.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseBenchLine(line, pkg); ok {
				out = append(out, b)
			}
		}
	}
	return out, env, sc.Err()
}

// parseBenchLine parses a single result line of the form
//
//	BenchmarkBasicDP-4   16438834   72.09 ns/op   0 B/op   0 allocs/op
//
// Unknown units are collected into Metrics, so extra ReportMetric columns
// are preserved in the snapshot. ok is false for non-result Benchmark
// lines (e.g. bare names printed under -v).
func parseBenchLine(line, pkg string) (Bench, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Bench{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Bench{}, false
	}
	b := Bench{Name: stripProcs(fields[0]), Pkg: pkg, Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Bench{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			b.NsPerOp = v
			seen = true
		case "B/op":
			b.BytesPerOp = int64(v)
		case "allocs/op":
			b.AllocsPerOp = int64(v)
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[fields[i+1]] = v
		}
	}
	return b, seen
}

// stripProcs removes the trailing -GOMAXPROCS suffix from a benchmark
// name, if present.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}
