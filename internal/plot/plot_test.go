package plot

import (
	"encoding/xml"
	"strings"
	"testing"
)

func TestRenderContainsMarkersAndLegend(t *testing.T) {
	out := Render("title", "x", "y", []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{4, 1, 0}},
	}, 40, 10)
	if !strings.Contains(out, "title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("missing data markers")
	}
}

func TestRenderEmpty(t *testing.T) {
	out := Render("t", "x", "y", nil, 40, 10)
	if !strings.Contains(out, "no data") {
		t.Error("empty render should say so")
	}
}

func TestRenderSinglePoint(t *testing.T) {
	out := Render("t", "x", "y", []Series{{Name: "a", X: []float64{5}, Y: []float64{7}}}, 40, 10)
	if !strings.Contains(out, "*") {
		t.Error("single point not plotted")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	// Constant y must not divide by zero.
	out := Render("t", "x", "y", []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{3, 3}}}, 40, 10)
	if out == "" {
		t.Error("flat series produced nothing")
	}
}

func TestRenderNaNSkipped(t *testing.T) {
	nan := 0.0
	nan = nan / nan
	out := Render("t", "x", "y", []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{nan, 2}}}, 40, 10)
	if out == "" {
		t.Error("NaN series produced nothing")
	}
}

func TestRenderClampsTinyDimensions(t *testing.T) {
	out := Render("t", "x", "y", []Series{{Name: "a", X: []float64{0, 1}, Y: []float64{0, 1}}}, 1, 1)
	if len(strings.Split(out, "\n")) < 5 {
		t.Error("clamped dimensions too small")
	}
}

func TestManySeriesCycleMarkers(t *testing.T) {
	series := make([]Series, 10)
	for i := range series {
		series[i] = Series{Name: string(rune('a' + i)), X: []float64{float64(i)}, Y: []float64{float64(i)}}
	}
	out := Render("t", "x", "y", series, 60, 12)
	if out == "" {
		t.Error("many series produced nothing")
	}
}

func TestHistogramBasic(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 2, 3, 10}
	out := Histogram("sizes", xs, 5, false)
	if !strings.Contains(out, "sizes (n=7)") {
		t.Errorf("missing title: %s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("missing bars")
	}
}

func TestHistogramLogBins(t *testing.T) {
	xs := []float64{1, 10, 100, 1000, 10000}
	out := Histogram("runtimes", xs, 4, true)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title + 4 bins
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// With log bins, each decade-spaced point lands in its own bin region:
	// every bin must be non-empty except possibly rounding edges.
	bars := strings.Count(out, "#")
	if bars < 4 {
		t.Errorf("log binning collapsed: %s", out)
	}
}

func TestHistogramEmpty(t *testing.T) {
	if !strings.Contains(Histogram("x", nil, 5, false), "no data") {
		t.Error("empty histogram should say so")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	out := Histogram("const", []float64{5, 5, 5}, 3, false)
	if !strings.Contains(out, "3") {
		t.Errorf("constant data mishandled: %s", out)
	}
	out = Histogram("neg-log", []float64{0, 1, 2}, 3, true)
	if out == "" {
		t.Error("zero value with log bins crashed rendering")
	}
}

func TestSVGLinesWellFormed(t *testing.T) {
	svg := SVGLines("fig", "Load", "wait (s)", []Series{
		{Name: "EASY", X: []float64{0.5, 0.9}, Y: []float64{100, 50000}},
		{Name: "Delayed-LOS", X: []float64{0.5, 0.9}, Y: []float64{90, 38000}},
	}, 600, 400)
	dec := xml.NewDecoder(strings.NewReader(svg))
	for {
		if _, err := dec.Token(); err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG chart not well-formed: %v", err)
		}
	}
	for _, want := range []string{"polyline", "circle", "EASY", "Delayed-LOS", "Load", "wait (s)"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestSVGLinesEmpty(t *testing.T) {
	svg := SVGLines("t", "x", "y", nil, 0, 0)
	if !strings.Contains(svg, "no data") || !strings.Contains(svg, `width="720"`) {
		t.Error("empty SVG chart wrong")
	}
}

func TestSVGLinesEscapesLabels(t *testing.T) {
	svg := SVGLines("a<b", "x&y", "q\"z", []Series{{Name: "s'1", X: []float64{1}, Y: []float64{1}}}, 300, 200)
	for _, bad := range []string{"a<b", "x&y", "q\"z>"} {
		if strings.Contains(svg, bad) {
			t.Errorf("unescaped %q in SVG", bad)
		}
	}
}

func TestCompactNum(t *testing.T) {
	cases := map[float64]string{0.5: "0.5", 1500: "1.5k", 25000: "25k", 3400000: "3.4M"}
	for v, want := range cases {
		if got := compactNum(v); got != want {
			t.Errorf("compactNum(%g) = %q, want %q", v, got, want)
		}
	}
}
