// Package plot renders small ASCII line charts so the benchmark harness can
// show each reproduced figure directly in the terminal, next to the numeric
// series.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one plotted line.
type Series struct {
	Name string
	X, Y []float64
}

// markers assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Render draws the series on a width x height character grid with axis
// annotations. Lines are point markers only (no interpolation); overlapping
// points show the later series' marker.
func Render(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	if !any {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mk := markers[si%len(markers)]
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			col := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			row := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			grid[row][col] = mk
		}
	}
	fmt.Fprintf(&b, "%s\n", ylabel)
	fmt.Fprintf(&b, "%10.4g ┤%s\n", maxY, string(grid[0]))
	for r := 1; r < height-1; r++ {
		fmt.Fprintf(&b, "%10s │%s\n", "", string(grid[r]))
	}
	fmt.Fprintf(&b, "%10.4g ┤%s\n", minY, string(grid[height-1]))
	fmt.Fprintf(&b, "%10s └%s\n", "", strings.Repeat("─", width))
	fmt.Fprintf(&b, "%11s%-10.4g%s%10.4g\n", "", minX, strings.Repeat(" ", maxInt(1, width-20)), maxX)
	fmt.Fprintf(&b, "%11s%s\n", "", xlabel)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%11s%s\n", "", strings.Join(legend, "   "))
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
