package plot

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram renders an ASCII histogram of xs with the given number of bins
// (log-scaled bins when logX is set, the natural choice for job runtimes
// spanning seconds to days).
func Histogram(title string, xs []float64, bins int, logX bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (n=%d)\n", title, len(xs))
	if len(xs) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if bins < 1 {
		bins = 10
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	lo, hi := ys[0], ys[len(ys)-1]
	transform := func(v float64) float64 { return v }
	if logX {
		if lo <= 0 {
			lo = math.SmallestNonzeroFloat64
		}
		transform = math.Log
	}
	tlo, thi := transform(lo), transform(hi)
	if thi <= tlo {
		thi = tlo + 1
	}
	counts := make([]int, bins)
	for _, v := range ys {
		tv := transform(math.Max(v, lo))
		i := int((tv - tlo) / (thi - tlo) * float64(bins))
		if i >= bins {
			i = bins - 1
		}
		if i < 0 {
			i = 0
		}
		counts[i]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	const barWidth = 50
	for i, c := range counts {
		frac := float64(i) / float64(bins)
		next := float64(i+1) / float64(bins)
		edge0 := tlo + frac*(thi-tlo)
		edge1 := tlo + next*(thi-tlo)
		if logX {
			edge0, edge1 = math.Exp(edge0), math.Exp(edge1)
		}
		bar := 0
		if maxCount > 0 {
			bar = c * barWidth / maxCount
		}
		if c > 0 && bar == 0 {
			bar = 1
		}
		fmt.Fprintf(&b, "%10.3g-%-10.3g %6d %s\n", edge0, edge1, c, strings.Repeat("#", bar))
	}
	return b.String()
}
