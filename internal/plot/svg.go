package plot

import (
	"fmt"
	"math"
	"strings"
)

// svgSeriesPalette colors series in SVG charts.
var svgSeriesPalette = []string{
	"#4e79a7", "#e15759", "#59a14f", "#f28e2b", "#b07aa1", "#76b7b2",
}

// SVGLines renders the series as an SVG line chart with markers, axes and a
// legend — the file-format counterpart of Render, used by expsuite to emit
// the reproduced figures as images.
func SVGLines(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width <= 0 {
		width = 720
	}
	if height <= 0 {
		height = 420
	}
	const (
		left   = 70
		right  = 20
		top    = 40
		bottom = 60
	)
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			any = true
			minX, maxX = math.Min(minX, s.X[i]), math.Max(maxX, s.X[i])
			minY, maxY = math.Min(minY, s.Y[i]), math.Max(maxY, s.Y[i])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="11">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" text-anchor="middle" font-size="13">%s</text>`+"\n", width/2, xmlEscape(title))
	if !any {
		fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">(no data)</text>`+"\n", width/2, height/2)
		b.WriteString("</svg>\n")
		return b.String()
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	plotW := float64(width - left - right)
	plotH := float64(height - top - bottom)
	px := func(x float64) float64 { return left + (x-minX)/(maxX-minX)*plotW }
	py := func(y float64) float64 { return top + plotH - (y-minY)/(maxY-minY)*plotH }

	// Axes and gridlines with tick labels.
	fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="black"/>`+"\n", left, top+plotH, width-right, top+plotH)
	fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%g" stroke="black"/>`+"\n", left, top, left, top+plotH)
	for i := 0; i <= 4; i++ {
		fy := minY + float64(i)/4*(maxY-minY)
		fmt.Fprintf(&b, `<line x1="%d" y1="%g" x2="%d" y2="%g" stroke="#dddddd"/>`+"\n", left, py(fy), width-right, py(fy))
		fmt.Fprintf(&b, `<text x="%d" y="%g" text-anchor="end">%s</text>`+"\n", left-6, py(fy)+4, compactNum(fy))
		fx := minX + float64(i)/4*(maxX-minX)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle">%s</text>`+"\n", px(fx), top+plotH+16, compactNum(fx))
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`+"\n", width/2, height-8, xmlEscape(xlabel))
	fmt.Fprintf(&b, `<text x="14" y="%g" text-anchor="middle" transform="rotate(-90 14 %g)">%s</text>`+"\n",
		top+plotH/2, top+plotH/2, xmlEscape(ylabel))

	// Series: polyline + circle markers.
	for si, s := range series {
		color := svgSeriesPalette[si%len(svgSeriesPalette)]
		pts := make([]string, 0, len(s.X))
		for i := range s.X {
			if math.IsNaN(s.X[i]) || math.IsNaN(s.Y[i]) {
				continue
			}
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.8"/>`+"\n",
				strings.Join(pts, " "), color)
		}
		for _, p := range pts {
			xy := strings.Split(p, ",")
			fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="3" fill="%s"/>`+"\n", xy[0], xy[1], color)
		}
		// Legend entry.
		ly := top + 14*si
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="10" height="10" fill="%s"/>`+"\n", width-right-130, ly, color)
		fmt.Fprintf(&b, `<text x="%d" y="%d">%s</text>`+"\n", width-right-115, ly+9, xmlEscape(s.Name))
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// compactNum renders an axis tick value briefly (1.2k, 3.4M).
func compactNum(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// xmlEscape escapes the five XML special characters.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
