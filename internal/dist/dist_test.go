package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func rng() *rand.Rand { return rand.New(rand.NewSource(1)) }

func sampleN(s Sampler, n int, r *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Sample(r)
	}
	return out
}

func TestUniformBounds(t *testing.T) {
	r := rng()
	u := Uniform{Lo: 2, Hi: 5}
	for i := 0; i < 10000; i++ {
		v := u.Sample(r)
		if v < 2 || v >= 5 {
			t.Fatalf("uniform sample %g outside [2,5)", v)
		}
	}
}

func TestUniformMean(t *testing.T) {
	xs := sampleN(Uniform{Lo: 0, Hi: 10}, 50000, rng())
	mean, _ := MeanStd(xs)
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("uniform mean %g, want ~5", mean)
	}
}

func TestExponentialMean(t *testing.T) {
	xs := sampleN(Exponential{Mean: 42}, 100000, rng())
	mean, _ := MeanStd(xs)
	if math.Abs(mean-42)/42 > 0.03 {
		t.Errorf("exponential mean %g, want ~42", mean)
	}
}

func TestExponentialPositive(t *testing.T) {
	r := rng()
	e := Exponential{Mean: 1}
	for i := 0; i < 10000; i++ {
		if e.Sample(r) < 0 {
			t.Fatal("negative exponential sample")
		}
	}
}

func TestGammaMomentsLargeShape(t *testing.T) {
	// Gamma(312, 0.03): mean 9.36, std 0.53 — the paper's second runtime
	// component.
	g := Gamma{Alpha: 312, Beta: 0.03}
	xs := sampleN(g, 50000, rng())
	mean, std := MeanStd(xs)
	if math.Abs(mean-9.36)/9.36 > 0.01 {
		t.Errorf("Gamma(312,.03) mean %g, want ~9.36", mean)
	}
	wantStd := math.Sqrt(312) * 0.03
	if math.Abs(std-wantStd)/wantStd > 0.05 {
		t.Errorf("Gamma(312,.03) std %g, want ~%g", std, wantStd)
	}
}

func TestGammaMomentsModerateShape(t *testing.T) {
	// Gamma(4.2, 0.94): the paper's first runtime component.
	g := Gamma{Alpha: 4.2, Beta: 0.94}
	xs := sampleN(g, 100000, rng())
	mean, std := MeanStd(xs)
	if math.Abs(mean-4.2*0.94)/(4.2*0.94) > 0.02 {
		t.Errorf("Gamma(4.2,.94) mean %g, want ~%g", mean, 4.2*0.94)
	}
	wantStd := math.Sqrt(4.2) * 0.94
	if math.Abs(std-wantStd)/wantStd > 0.05 {
		t.Errorf("Gamma(4.2,.94) std %g, want ~%g", std, wantStd)
	}
}

func TestGammaShapeBelowOne(t *testing.T) {
	g := Gamma{Alpha: 0.5, Beta: 2}
	xs := sampleN(g, 100000, rng())
	mean, _ := MeanStd(xs)
	if math.Abs(mean-1)/1 > 0.05 {
		t.Errorf("Gamma(0.5,2) mean %g, want ~1", mean)
	}
	for _, x := range xs[:1000] {
		if x < 0 {
			t.Fatal("negative gamma sample")
		}
	}
}

func TestGammaInvalidParamsPanic(t *testing.T) {
	for _, g := range []Gamma{{0, 1}, {1, 0}, {-1, 2}, {2, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Gamma%+v did not panic", g)
				}
			}()
			g.Sample(rng())
		}()
	}
}

func TestHyperGammaMixture(t *testing.T) {
	// P=1 and P=0 collapse to the components.
	h1 := HyperGamma{First: Gamma{2, 1}, Second: Gamma{100, 1}, P: 1}
	xs := sampleN(h1, 20000, rng())
	mean, _ := MeanStd(xs)
	if math.Abs(mean-2) > 0.2 {
		t.Errorf("P=1 mixture mean %g, want ~2", mean)
	}
	h0 := HyperGamma{First: Gamma{2, 1}, Second: Gamma{100, 1}, P: 0}
	xs = sampleN(h0, 20000, rng())
	mean, _ = MeanStd(xs)
	if math.Abs(mean-100)/100 > 0.02 {
		t.Errorf("P=0 mixture mean %g, want ~100", mean)
	}
}

func TestHyperGammaBlend(t *testing.T) {
	h := HyperGamma{First: Gamma{2, 1}, Second: Gamma{100, 1}, P: 0.5}
	xs := sampleN(h, 100000, rng())
	mean, _ := MeanStd(xs)
	if math.Abs(mean-51)/51 > 0.05 {
		t.Errorf("P=.5 mixture mean %g, want ~51", mean)
	}
}

func TestTwoStageUniformSupport(t *testing.T) {
	// The paper's BlueGene/P sizes: small 32/64/96, large 128..320.
	ts := TwoStageUniform{PSmall: 0.5, SmallLo: 1, SmallHi: 3, LargeLo: 4, LargeHi: 10, Unit: 32}
	r := rng()
	seen := map[int]bool{}
	for i := 0; i < 20000; i++ {
		v := ts.Sample(r)
		if v%32 != 0 {
			t.Fatalf("size %d not a multiple of 32", v)
		}
		if v < 32 || v > 320 {
			t.Fatalf("size %d out of [32,320]", v)
		}
		seen[v] = true
	}
	for _, want := range []int{32, 64, 96, 128, 160, 192, 224, 256, 288, 320} {
		if !seen[want] {
			t.Errorf("size %d never sampled", want)
		}
	}
}

func TestTwoStageUniformSmallProbability(t *testing.T) {
	for _, ps := range []float64{0.2, 0.5, 0.8} {
		ts := TwoStageUniform{PSmall: ps, SmallLo: 1, SmallHi: 3, LargeLo: 4, LargeHi: 10, Unit: 32}
		r := rng()
		small := 0
		n := 50000
		for i := 0; i < n; i++ {
			if ts.Sample(r) <= 96 {
				small++
			}
		}
		got := float64(small) / float64(n)
		if math.Abs(got-ps) > 0.01 {
			t.Errorf("PSmall=%g: observed small fraction %g", ps, got)
		}
	}
}

func TestTwoStageUniformExtremes(t *testing.T) {
	r := rng()
	allSmall := TwoStageUniform{PSmall: 1, SmallLo: 2, SmallHi: 2, LargeLo: 9, LargeHi: 9, Unit: 32}
	for i := 0; i < 100; i++ {
		if v := allSmall.Sample(r); v != 64 {
			t.Fatalf("PSmall=1 with degenerate range gave %d, want 64", v)
		}
	}
	allLarge := TwoStageUniform{PSmall: 0, SmallLo: 1, SmallHi: 3, LargeLo: 10, LargeHi: 10, Unit: 32}
	for i := 0; i < 100; i++ {
		if v := allLarge.Sample(r); v != 320 {
			t.Fatalf("PSmall=0 with degenerate range gave %d, want 320", v)
		}
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ v, lo, hi, want float64 }{
		{0.5, 0, 1, 0.5},
		{-1, 0, 1, 0},
		{2, 0, 1, 1},
		{0, 0, 1, 0},
		{1, 0, 1, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.v, c.lo, c.hi); got != c.want {
			t.Errorf("Clamp(%g,%g,%g) = %g, want %g", c.v, c.lo, c.hi, got, c.want)
		}
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if mean != 5 {
		t.Errorf("mean %g, want 5", mean)
	}
	if math.Abs(std-2.138) > 0.01 {
		t.Errorf("std %g, want ~2.138 (sample std)", std)
	}
}

func TestMeanStdDegenerate(t *testing.T) {
	if m, s := MeanStd(nil); m != 0 || s != 0 {
		t.Errorf("MeanStd(nil) = %g, %g", m, s)
	}
	if m, s := MeanStd([]float64{3}); m != 3 || s != 0 {
		t.Errorf("MeanStd([3]) = %g, %g", m, s)
	}
}

func TestDeterminism(t *testing.T) {
	a := sampleN(Gamma{4.2, 0.94}, 100, rand.New(rand.NewSource(9)))
	b := sampleN(Gamma{4.2, 0.94}, 100, rand.New(rand.NewSource(9)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different gamma streams")
		}
	}
}

// Property: gamma samples are always positive for positive parameters.
func TestPropertyGammaPositive(t *testing.T) {
	r := rng()
	f := func(a8, b8 uint8) bool {
		alpha := 0.1 + float64(a8)/16
		beta := 0.01 + float64(b8)/64
		g := Gamma{Alpha: alpha, Beta: beta}
		for i := 0; i < 10; i++ {
			if g.Sample(r) <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: two-stage uniform output is always Unit-aligned and in range.
func TestPropertyTwoStageAligned(t *testing.T) {
	r := rng()
	f := func(p8 uint8) bool {
		ts := TwoStageUniform{
			PSmall: float64(p8) / 255, SmallLo: 1, SmallHi: 3,
			LargeLo: 4, LargeHi: 10, Unit: 32,
		}
		for i := 0; i < 20; i++ {
			v := ts.Sample(r)
			if v%32 != 0 || v < 32 || v > 320 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
