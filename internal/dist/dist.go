// Package dist implements the random distributions used by the Lublin–
// Feitelson analytical workload model and by the paper's Cloud Workload
// Format generator: Gamma (Marsaglia–Tsang), hyper-Gamma, exponential, and
// the paper's two-stage uniform job-size distribution.
//
// All samplers draw from an explicit *rand.Rand so that every generated
// workload is reproducible from a seed, and independent experiment points
// can use independent streams.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Sampler produces one sample per call.
type Sampler interface {
	Sample(r *rand.Rand) float64
}

// Uniform samples uniformly from [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample returns a uniform variate in [Lo, Hi).
func (u Uniform) Sample(r *rand.Rand) float64 {
	return u.Lo + (u.Hi-u.Lo)*r.Float64()
}

// Exponential samples from an exponential distribution with the given mean.
type Exponential struct {
	Mean float64
}

// Sample returns an exponential variate with mean Mean.
func (e Exponential) Sample(r *rand.Rand) float64 {
	return r.ExpFloat64() * e.Mean
}

// Gamma samples from a Gamma(Alpha, Beta) distribution with shape Alpha and
// scale Beta (mean Alpha*Beta, variance Alpha*Beta^2).
type Gamma struct {
	Alpha, Beta float64
}

// Sample returns a Gamma(Alpha, Beta) variate using the Marsaglia–Tsang
// squeeze method, with the standard shape<1 boost.
func (g Gamma) Sample(r *rand.Rand) float64 {
	if g.Alpha <= 0 || g.Beta <= 0 {
		panic(fmt.Sprintf("dist: invalid Gamma parameters alpha=%g beta=%g", g.Alpha, g.Beta))
	}
	alpha := g.Alpha
	boost := 1.0
	if alpha < 1 {
		// Gamma(a) = Gamma(a+1) * U^(1/a)
		boost = math.Pow(r.Float64(), 1/alpha)
		alpha++
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v * g.Beta
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v * g.Beta
		}
	}
}

// HyperGamma is a two-component Gamma mixture: with probability P the sample
// is drawn from First, otherwise from Second. The Lublin model uses it (with
// P tied linearly to job size) for the log of job runtimes.
type HyperGamma struct {
	First, Second Gamma
	P             float64
}

// Sample returns a variate from the mixture.
func (h HyperGamma) Sample(r *rand.Rand) float64 {
	if r.Float64() < h.P {
		return h.First.Sample(r)
	}
	return h.Second.Sample(r)
}

// TwoStageUniform is the paper's job-size model (Section IV-D): with
// probability PSmall the size is Unit * round(U[SmallLo, SmallHi]); otherwise
// Unit * round(U[LargeLo, LargeHi]). For the simulated BlueGene/P, Unit = 32,
// small in [1,3] (32/64/96 processors) and large in [4,10] (128..320).
type TwoStageUniform struct {
	PSmall           float64
	SmallLo, SmallHi int
	LargeLo, LargeHi int
	Unit             int
}

// Sample returns a job size in processors.
func (t TwoStageUniform) Sample(r *rand.Rand) int {
	lo, hi := t.LargeLo, t.LargeHi
	if r.Float64() < t.PSmall {
		lo, hi = t.SmallLo, t.SmallHi
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	n := lo + r.Intn(hi-lo+1)
	return n * t.Unit
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// MeanStd returns the sample mean and standard deviation of xs.
func MeanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	if len(xs) < 2 {
		return mean, 0
	}
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	std = math.Sqrt(std / float64(len(xs)-1))
	return mean, std
}
