package elastisched_test

import (
	"fmt"

	es "elastisched"
)

// ExampleSimulate runs the paper's Delayed-LOS scheduler on a tiny
// hand-built workload: the motivating example of Figure 2, where skipping
// the 7-group head job lets the 4+6-group pair fill the whole machine.
func ExampleSimulate() {
	w, _ := es.BuildWorkload([]es.JobSpec{
		{ID: 1, Size: 7 * 32, Duration: 3600, Arrival: 0, RequestedStart: -1},
		{ID: 2, Size: 4 * 32, Duration: 3600, Arrival: 0, RequestedStart: -1},
		{ID: 3, Size: 6 * 32, Duration: 3600, Arrival: 0, RequestedStart: -1},
	}, nil)

	los, _ := es.Simulate(w, "LOS", es.Options{})
	delayed, _ := es.Simulate(w, "Delayed-LOS", es.Options{Cs: 7})

	fmt.Printf("LOS mean wait:         %.0f s\n", los.Summary.MeanWait)
	fmt.Printf("Delayed-LOS mean wait: %.0f s\n", delayed.Summary.MeanWait)
	// Output:
	// LOS mean wait:         2400 s
	// Delayed-LOS mean wait: 1200 s
}

// ExampleBuildWorkload mixes a batch job, a dedicated job with a rigid
// start, and an Elastic Control Command extending a running job.
func ExampleBuildWorkload() {
	w, _ := es.BuildWorkload([]es.JobSpec{
		{ID: 1, Size: 160, Duration: 600, Arrival: 0, RequestedStart: -1},
		{ID: 2, Size: 96, Duration: 300, Arrival: 0, RequestedStart: 1000},
	}, []es.CommandSpec{
		{JobID: 1, Issue: 100, Type: "ET", Amount: 300},
	})

	res, _ := es.Simulate(w, "Hybrid-LOS-E", es.Options{})
	fmt.Printf("jobs finished: %d, dedicated on time: %.0f%%, ECCs applied: %d\n",
		res.Summary.JobsFinished, 100*res.Summary.DedicatedOnTime, res.ECC.Applied)
	// Output:
	// jobs finished: 2, dedicated on time: 100%, ECCs applied: 1
}

// ExampleGenerateWorkload draws a synthetic trace from the paper's
// Lublin-based model and reports its composition.
func ExampleGenerateWorkload() {
	p := es.DefaultWorkloadParams()
	p.Seed = 7
	p.N = 100
	p.PD = 0.5 // half dedicated (paper Figure 9 regime)
	p.PE = 0.2 // extension commands
	p.PR = 0.1 // reduction commands
	p.TargetLoad = 0.9

	w, _ := es.GenerateWorkload(p)
	fmt.Printf("%d jobs (%d dedicated), %d elastic commands, load %.1f\n",
		len(w.Jobs), w.NumDedicated(), len(w.Commands), w.Load(320))
	// Output:
	// 100 jobs (53 dedicated), 32 elastic commands, load 0.9
}
