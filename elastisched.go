// Package elastisched is a library for scheduling batch and heterogeneous
// jobs with runtime elasticity in a parallel processing environment,
// reproducing Kumar, Shae & Jamjoom (IPDPS 2012).
//
// It provides:
//
//   - a discrete-event simulation engine for a BlueGene/P-style machine
//     (M processors allocated in node groups);
//   - the paper's scheduler family — LOS, Delayed-LOS and Hybrid-LOS — next
//     to EASY backfilling and classic baselines, each composable with a
//     dedicated-job queue (-D) and an Elastic Control Command processor (-E);
//   - the Cloud Workload Format (CWF): the Standard Workload Format extended
//     with requested start times and ET/RT/EP/RP elasticity commands;
//   - a Lublin-model synthetic workload generator; and
//   - the paper's full evaluation (Figures 1, 5-11; Tables IV-VII) as
//     runnable experiments.
//
// Quick start:
//
//	params := elastisched.DefaultWorkloadParams()
//	params.PS = 0.2          // mostly large jobs
//	params.TargetLoad = 0.9  // offered load
//	w, _ := elastisched.GenerateWorkload(params)
//	res, _ := elastisched.Simulate(w, "Delayed-LOS", elastisched.Options{})
//	fmt.Println(res.Summary)
package elastisched

import (
	"io"

	"elastisched/internal/core"
	"elastisched/internal/cwf"
	"elastisched/internal/dispatch"
	"elastisched/internal/engine"
	"elastisched/internal/experiment"
	"elastisched/internal/fault"
	"elastisched/internal/job"
	"elastisched/internal/metrics"
	"elastisched/internal/sched"
	"elastisched/internal/swf"
	"elastisched/internal/trace"
	"elastisched/internal/workload"
)

// Re-exported core types. See the corresponding internal packages for the
// full documentation of each.
type (
	// Workload is a parsed or generated CWF workload: job submissions plus
	// the elastic control command stream.
	Workload = cwf.Workload
	// WorkloadParams configures the synthetic generator (paper Section IV-D).
	WorkloadParams = workload.Params
	// Summary holds the measured metrics of one run: utilization, mean
	// wait, slowdown, and diagnostics.
	Summary = metrics.Summary
	// Result is the outcome of one simulation run.
	Result = engine.Result
	// Scheduler is a scheduling policy usable with the engine.
	Scheduler = sched.Scheduler
	// Experiment is a paper figure/table (or extension study) as code.
	Experiment = experiment.Experiment
	// ExperimentResult is one completed sweep panel.
	ExperimentResult = experiment.Result
	// Trace records per-job placement during a run and renders ASCII/SVG
	// Gantt charts of the schedule.
	Trace = trace.Recorder
	// Session is a live, incrementally driven simulation: step it, inject
	// jobs and commands online, snapshot and restore it. See NewSession.
	Session = engine.Session
	// SessionSnapshot is the complete captured state of a Session, JSON
	// encodable via its Encode method and restorable via ResumeSession.
	SessionSnapshot = engine.Snapshot
	// FaultConfig enables node-group fault injection for a run: either a
	// scripted FaultTrace or sampled MTBF/MTTR outages, plus the retry
	// policy applied to killed jobs. Attach it via Options.Faults.
	FaultConfig = engine.FaultConfig
	// FaultTrace is a replayable sequence of node-group failure and repair
	// events; parse one with ParseFaultTrace or let the engine sample one.
	FaultTrace = fault.Trace
	// FaultEvent is one failure or repair of a set of node groups.
	FaultEvent = fault.Event
	// RetryPolicy configures what happens to batch jobs killed by a
	// failure: Requeue (at the head of the queue, with FullRuntime or
	// RemainingRuntime restart, bounded by MaxRetries and delayed by
	// Backoff) or Drop.
	RetryPolicy = fault.RetryPolicy
	// CheckpointPolicy selects how running batch jobs checkpoint their
	// progress: CheckpointNone (kills follow the RetryPolicy restart
	// binary), CheckpointPeriodic (every FaultConfig.CheckpointInterval
	// seconds), CheckpointOnResize (every applied malleable resize doubles
	// as a checkpoint), or CheckpointDaly (periodic at Daly's optimal
	// interval sqrt(2·MTBF·C)). Set it via FaultConfig.Checkpoint.
	CheckpointPolicy = fault.CheckpointPolicy
)

// Retry-policy mode and restart constants; see RetryPolicy.
const (
	Requeue          = fault.Requeue
	Drop             = fault.Drop
	FullRuntime      = fault.FullRuntime
	RemainingRuntime = fault.RemainingRuntime
)

// Checkpoint-policy constants; see CheckpointPolicy.
const (
	CheckpointNone     = fault.CheckpointNone
	CheckpointPeriodic = fault.CheckpointPeriodic
	CheckpointOnResize = fault.CheckpointOnResize
	CheckpointDaly     = fault.CheckpointDaly
)

// ParseCheckpointPolicy resolves "none", "periodic", "on-resize" or "daly"
// (the empty string means none).
func ParseCheckpointPolicy(s string) (CheckpointPolicy, error) {
	return fault.ParseCheckpointPolicy(s)
}

// DalyInterval returns Daly's first-order optimal checkpoint interval
// sqrt(2·MTBF·C) for a mean time between failures and per-checkpoint cost,
// floored to whole seconds (at least 1).
func DalyInterval(mtbf float64, cost int64) int64 { return fault.DalyInterval(mtbf, cost) }

// ParseFaultTrace reads a scripted fault trace: one "<time> fail|repair
// <group>[,<group>...]" event per line, times non-decreasing, #-comments
// ignored.
func ParseFaultTrace(r io.Reader) (*FaultTrace, error) { return fault.Parse(r) }

// WriteFaultTrace emits a trace in the format ParseFaultTrace reads — for
// persisting a sampled trace (Session.FaultTrace) as a replayable script.
func WriteFaultTrace(w io.Writer, t *FaultTrace) error { return fault.Write(w, t) }

// NewTrace returns a placement recorder for a machine of m processors in
// groups of unit; attach it via Options.Trace.
func NewTrace(m, unit int) *Trace { return trace.NewRecorder(m, unit) }

// DefaultWorkloadParams returns the paper's experimental configuration:
// a 320-processor BlueGene/P in groups of 32, Table I runtime parameters
// and Table II arrival parameters.
func DefaultWorkloadParams() WorkloadParams { return workload.DefaultParams() }

// SDSCLikeParams returns parameters mimicking the SDSC SP2 archive log used
// in the paper's Figure 1.
func SDSCLikeParams() WorkloadParams { return workload.SDSCLike() }

// GenerateWorkload produces a synthetic CWF workload.
func GenerateWorkload(p WorkloadParams) (*Workload, error) { return workload.Generate(p) }

// ParseCWF reads a Cloud Workload Format stream (plain SWF is accepted).
func ParseCWF(r io.Reader) (*Workload, error) { return cwf.Parse(r) }

// WriteCWF emits a workload as CWF text.
func WriteCWF(w io.Writer, wl *Workload) error { return cwf.Write(w, wl) }

// ParseSWF reads a Standard Workload Format archive log and wraps it as a
// (batch-only, non-elastic) workload.
func ParseSWF(r io.Reader) (*Workload, error) {
	log, err := swf.Parse(r)
	if err != nil {
		return nil, err
	}
	return cwf.FromSWF(log), nil
}

// JobSpec describes one job for BuildWorkload.
type JobSpec struct {
	// ID must be unique and positive.
	ID int
	// Size is the processor demand (quantized up to the machine unit when
	// simulated).
	Size int
	// Duration is the user-estimated execution time in seconds.
	Duration int64
	// Arrival is the submit time in seconds.
	Arrival int64
	// RequestedStart, when >= Arrival, makes this a dedicated/interactive
	// job with a rigid start time; use -1 (or any negative) for batch jobs.
	RequestedStart int64
	// MinProcs and MaxProcs, when MaxProcs > 0, declare the job malleable:
	// with Options.Malleable the scheduler may resize it at runtime anywhere
	// inside [MinProcs, MaxProcs] (work-conserving), and a node-group
	// failure shrinks it onto its survivors instead of killing it. Leave
	// both zero for a rigid job.
	MinProcs, MaxProcs int
}

// CommandSpec describes one Elastic Control Command for BuildWorkload.
type CommandSpec struct {
	JobID int
	// Issue is when the user issues the command.
	Issue int64
	// Type is "ET", "RT", "EP" or "RP".
	Type string
	// Amount is seconds (ET/RT) or processors (EP/RP).
	Amount int64
}

// BuildWorkload constructs a workload programmatically, for scenarios not
// covered by the synthetic generator or an archive trace.
func BuildWorkload(jobs []JobSpec, cmds []CommandSpec) (*Workload, error) {
	w := &cwf.Workload{}
	for _, s := range jobs {
		j := &job.Job{
			ID: s.ID, Size: s.Size, Dur: s.Duration, Arrival: s.Arrival,
			ReqStart: -1, Class: job.Batch,
		}
		if s.RequestedStart >= 0 {
			j.Class = job.Dedicated
			j.ReqStart = s.RequestedStart
		}
		if s.MaxProcs > 0 {
			j.MinProcs, j.MaxProcs = s.MinProcs, s.MaxProcs
		}
		w.Jobs = append(w.Jobs, j)
	}
	for _, c := range cmds {
		t, err := cwf.ParseReqType(c.Type)
		if err != nil {
			return nil, err
		}
		w.Commands = append(w.Commands, cwf.Command{JobID: c.JobID, Issue: c.Issue, Type: t, Amount: c.Amount})
	}
	w.Sort()
	return w, nil
}

// Options configures Simulate.
type Options struct {
	// M and Unit give the machine geometry; zero values default to the
	// paper's 320 processors in groups of 32.
	M, Unit int
	// Cs is the maximum skip count for Delayed-LOS/Hybrid-LOS (0 = default).
	Cs int
	// Lookahead bounds the DP window (0 = the LOS paper's 50).
	Lookahead int
	// MaxECCPerJob caps elastic commands per job (0 = unlimited).
	MaxECCPerJob int
	// Paranoid validates machine invariants at every instant.
	Paranoid bool
	// Trace, when non-nil, records every placement for Gantt rendering.
	Trace *Trace
	// Contiguous requires contiguous node-group allocations (BlueGene-style
	// partitioning): fragmentation can then delay capacity-feasible jobs.
	Contiguous bool
	// Migrate enables on-the-fly defragmentation (compaction) when a
	// contiguous placement fails.
	Migrate bool
	// Faults enables node-group fault injection. See FaultConfig.
	Faults *FaultConfig
	// Malleable enables true runtime elasticity: resizes rescale the job's
	// remaining work, -M algorithm variants propose shrink/expand each
	// cycle, and failure victims with malleable bounds shrink onto their
	// surviving node groups instead of dying.
	Malleable bool
	// ResizeOverhead charges each resize a reconfiguration penalty in
	// seconds (with Malleable).
	ResizeOverhead int64
}

// AlgorithmNames lists every algorithm accepted by Simulate: the paper's
// Table III (EASY/LOS/Delayed-LOS/Hybrid-LOS and their -D/-E/-DE variants)
// plus FCFS, SJF, LJF, CONS and Adaptive.
func AlgorithmNames() []string { return experiment.Names() }

// Simulate runs the workload under the named algorithm and returns the
// measured result. -E variants process the workload's elastic control
// commands; others ignore them (counted in Result.DroppedECC).
func Simulate(w *Workload, algorithm string, opt Options) (*Result, error) {
	algo, err := experiment.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	if opt.M == 0 {
		opt.M = 320
	}
	if opt.Unit == 0 {
		opt.Unit = 32
	}
	pt := experiment.Point{Cs: opt.Cs, Lookahead: opt.Lookahead}
	cfg := engine.Config{
		M:              opt.M,
		Unit:           opt.Unit,
		Scheduler:      algo.New(pt),
		ProcessECC:     algo.ECC,
		MaxECCPerJob:   opt.MaxECCPerJob,
		Paranoid:       opt.Paranoid,
		Contiguous:     opt.Contiguous,
		Migrate:        opt.Migrate,
		Faults:         opt.Faults,
		Malleable:      opt.Malleable,
		ResizeOverhead: opt.ResizeOverhead,
	}
	if opt.Trace != nil {
		cfg.Observer = opt.Trace
	}
	return engine.Run(w, cfg)
}

// ShardedOptions configures SimulateSharded beyond the per-cluster Options.
type ShardedOptions struct {
	// Clusters is the number of parallel cluster simulations (the global
	// machine is Clusters × M processors). Must be at least 1.
	Clusters int
	// Workers bounds the goroutines stepping clusters; 0 means GOMAXPROCS.
	// The result is byte-identical for any worker count.
	Workers int
	// Route names the routing policy splitting submissions over clusters:
	// "roundrobin" (the default for ""), "least-work", or "best-fit" —
	// plus "feedback" when Epoch > 0. See RoutePolicies and
	// DynamicRoutePolicies.
	Route string
	// Epoch, when positive on a multi-cluster run, switches to the
	// dispatcher's deterministic epoch protocol: clusters step to shared
	// virtual-time barriers every Epoch sim-seconds and exchange compact
	// queue digests there. Required by Steal, Affinity, and the "feedback"
	// route; a single cluster ignores it.
	Epoch int64
	// Steal lets idle clusters pull queued jobs from backlogged ones at
	// each barrier, commands following their job.
	Steal bool
	// Affinity, when positive, pins every Affinity-th submission (job IDs
	// divisible by Affinity) to a home cluster derived from its ID;
	// routing honors the pin and stealing never violates it.
	Affinity int
}

// RoutePolicies lists the routing-policy names SimulateSharded accepts for
// ShardedOptions.Route on a static (Epoch == 0) run, sorted.
func RoutePolicies() []string { return dispatch.Policies() }

// DynamicRoutePolicies lists the routing-policy names accepted when
// ShardedOptions.Epoch > 0: the static set plus "feedback", sorted.
func DynamicRoutePolicies() []string { return dispatch.DynamicPolicies() }

// ShardedResult is the merged outcome of a SimulateSharded run; see
// dispatch.Result for the merge semantics.
type ShardedResult = dispatch.Result

// SimulateSharded runs the workload across N parallel per-cluster
// simulations behind a global dispatcher — the two-level scale-out
// configuration. sh.Route picks the dispatch policy (round-robin by
// default; least-work and best-fit are load- and size-aware). opt
// configures each cluster exactly as Simulate would (M is the per-cluster
// machine size; Trace is rejected: placement events from parallel clusters
// have no deterministic interleaving). Results are deterministic for a
// given workload, cluster count and policy, independent of sh.Workers.
func SimulateSharded(w *Workload, algorithm string, opt Options, sh ShardedOptions) (*ShardedResult, error) {
	algo, err := experiment.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	if opt.M == 0 {
		opt.M = 320
	}
	if opt.Unit == 0 {
		opt.Unit = 32
	}
	if opt.Trace != nil {
		return nil, dispatch.ErrTemplateObserver
	}
	pt := experiment.Point{Cs: opt.Cs, Lookahead: opt.Lookahead}
	return dispatch.Run(w, dispatch.Config{
		Clusters: sh.Clusters,
		Workers:  sh.Workers,
		Route:    sh.Route,
		Epoch:    sh.Epoch,
		Steal:    sh.Steal,
		Affinity: sh.Affinity,
		Engine: engine.Config{
			M:              opt.M,
			Unit:           opt.Unit,
			ProcessECC:     algo.ECC,
			MaxECCPerJob:   opt.MaxECCPerJob,
			Paranoid:       opt.Paranoid,
			Contiguous:     opt.Contiguous,
			Migrate:        opt.Migrate,
			Faults:         opt.Faults,
			Malleable:      opt.Malleable,
			ResizeOverhead: opt.ResizeOverhead,
		},
		NewScheduler: func() Scheduler { return algo.New(pt) },
	})
}

// NewSession builds a live simulation under the named algorithm, without
// admitting any work yet. Feed it a workload with Load, or individual jobs
// and commands with Inject/InjectCommand, and drive it with Step, RunUntil
// or Run; Snapshot captures its complete state at any point. Simulate is
// the one-shot composition of NewSession + Load + Run + Result.
func NewSession(algorithm string, opt Options) (*Session, error) {
	algo, err := experiment.ByName(algorithm)
	if err != nil {
		return nil, err
	}
	if opt.M == 0 {
		opt.M = 320
	}
	if opt.Unit == 0 {
		opt.Unit = 32
	}
	pt := experiment.Point{Cs: opt.Cs, Lookahead: opt.Lookahead}
	cfg := engine.Config{
		M:              opt.M,
		Unit:           opt.Unit,
		Scheduler:      algo.New(pt),
		ProcessECC:     algo.ECC,
		MaxECCPerJob:   opt.MaxECCPerJob,
		Paranoid:       opt.Paranoid,
		Contiguous:     opt.Contiguous,
		Migrate:        opt.Migrate,
		Faults:         opt.Faults,
		Malleable:      opt.Malleable,
		ResizeOverhead: opt.ResizeOverhead,
	}
	if opt.Trace != nil {
		cfg.Observer = opt.Trace
	}
	return engine.New(cfg)
}

// ResumeSession reads a snapshot written by (*SessionSnapshot).Encode and
// reconstructs the captured session: machine geometry and feature flags
// come from the snapshot, the scheduling policy is rebuilt by the captured
// algorithm name (opt.Cs and opt.Lookahead parameterize it; geometry
// fields of opt are ignored). The returned session continues exactly where
// the captured one stood.
func ResumeSession(r io.Reader, opt Options) (*Session, error) {
	sn, err := DecodeSessionSnapshot(r)
	if err != nil {
		return nil, err
	}
	return ResumeSnapshot(sn, opt)
}

// DecodeSessionSnapshot reads a snapshot previously written by
// (*SessionSnapshot).Encode, without restoring it — for inspecting the
// captured algorithm, clock, or job states before resuming.
func DecodeSessionSnapshot(r io.Reader) (*SessionSnapshot, error) {
	return engine.DecodeSnapshot(r)
}

// ResumeSnapshot restores an already-decoded snapshot; see ResumeSession.
func ResumeSnapshot(sn *SessionSnapshot, opt Options) (*Session, error) {
	algo, err := experiment.ByName(sn.Scheduler)
	if err != nil {
		return nil, err
	}
	pt := experiment.Point{Cs: opt.Cs, Lookahead: opt.Lookahead}
	cfg := engine.Config{
		M:              sn.M,
		Unit:           sn.Unit,
		Scheduler:      algo.New(pt),
		ProcessECC:     sn.ProcessECC,
		MaxECCPerJob:   sn.MaxECCPerJob,
		Paranoid:       opt.Paranoid,
		Contiguous:     sn.Contiguous,
		Migrate:        sn.Migrate,
		Malleable:      sn.Malleable,
		ResizeOverhead: sn.ResizeOverhead,
	}
	if sn.Retry != nil {
		// A fault-injected session: the pending failure/repair events live in
		// the snapshot itself (no trace is re-sampled on restore), so the
		// rebuilt config only needs the matching retry policy and checkpoint
		// knobs.
		ckpt, err := fault.ParseCheckpointPolicy(sn.Checkpoint)
		if err != nil {
			return nil, err
		}
		cfg.Faults = &engine.FaultConfig{
			Trace:          &fault.Trace{},
			Retry:          *sn.Retry,
			Checkpoint:     ckpt,
			CheckpointCost: sn.CheckpointCost,
		}
		switch ckpt {
		case fault.CheckpointPeriodic:
			cfg.Faults.CheckpointInterval = sn.CheckpointInterval
		case fault.CheckpointDaly:
			// Daly derives per-job intervals from the captured MTBF; the
			// config carries it as a sampling parameter (incompatible with
			// a scripted trace placeholder), which is harmless here — a
			// restored session never samples, its fault events are pinned
			// in the snapshot.
			cfg.Faults.Trace = nil
			cfg.Faults.MTBF = sn.CheckpointMTBF
		}
	}
	if opt.Trace != nil {
		cfg.Observer = opt.Trace
	}
	s, err := engine.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := s.Restore(sn); err != nil {
		return nil, err
	}
	return s, nil
}

// SimulateWith runs the workload under a caller-provided policy
// implementation (anything satisfying the Scheduler interface), for
// experimenting with custom scheduling ideas against the same engine,
// workloads and metrics as the built-in algorithms. processECC attaches
// the Elastic Control Command processor (the policy's -E behaviour).
func SimulateWith(w *Workload, s Scheduler, processECC bool, opt Options) (*Result, error) {
	if opt.M == 0 {
		opt.M = 320
	}
	if opt.Unit == 0 {
		opt.Unit = 32
	}
	cfg := engine.Config{
		M:              opt.M,
		Unit:           opt.Unit,
		Scheduler:      s,
		ProcessECC:     processECC,
		MaxECCPerJob:   opt.MaxECCPerJob,
		Paranoid:       opt.Paranoid,
		Contiguous:     opt.Contiguous,
		Migrate:        opt.Migrate,
		Faults:         opt.Faults,
		Malleable:      opt.Malleable,
		ResizeOverhead: opt.ResizeOverhead,
	}
	if opt.Trace != nil {
		cfg.Observer = opt.Trace
	}
	return engine.Run(w, cfg)
}

// NewScheduler constructs a named policy directly (for use with custom
// engines or inspection). The boolean reports whether the name denotes an
// -E variant that expects an ECC processor.
func NewScheduler(algorithm string, cs int) (Scheduler, bool, error) {
	algo, err := experiment.ByName(algorithm)
	if err != nil {
		return nil, false, err
	}
	return algo.New(experiment.Point{Cs: cs}), algo.ECC, nil
}

// NewDelayedLOS returns the paper's Delayed-LOS (Algorithm 1) with maximum
// skip count cs.
func NewDelayedLOS(cs int) Scheduler { return core.NewDelayedLOS(cs) }

// NewHybridLOS returns the paper's Hybrid-LOS (Algorithm 2) with maximum
// skip count cs.
func NewHybridLOS(cs int) Scheduler { return core.NewHybridLOS(cs) }

// CalibrateCs empirically finds the maximum skip count minimizing
// Delayed-LOS's mean waiting time for a workload configuration — the
// calibration the paper performs before each load sweep. csMax <= 0 sweeps
// 1..20; empty seeds use the default three.
func CalibrateCs(params WorkloadParams, csMax int, seeds []int64) (int, error) {
	best, _, err := experiment.CalibrateCs(params, csMax, seeds, 0)
	return best, err
}

// Experiments returns the full evaluation suite: Figures 1 and 5-11 with
// their improvement tables (Tables IV-VII), plus the extension studies.
func Experiments() []*Experiment { return experiment.All() }

// ExperimentByID resolves one experiment ("fig7", "table5", "lookahead"...).
func ExperimentByID(id string) (*Experiment, error) { return experiment.ByID(id) }
