// Benchmarks that regenerate the paper's evaluation: one benchmark per
// figure (1, 5-11) and per improvement table (IV-VII), plus ablation and
// throughput benches. Each figure benchmark executes the full sweep —
// workload generation, simulation of every algorithm at every point across
// the seeds — and prints the series/rows the paper reports on the first
// iteration. Custom benchmark metrics carry the headline improvement
// percentages, so `go test -bench=.` doubles as the reproduction report.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// or a single figure with e.g. `go test -bench=BenchmarkFig7`.
package elastisched_test

import (
	"fmt"
	"sync"
	"testing"

	"elastisched/internal/experiment"
)

// benchCache memoizes sweep results so the table benchmarks (IV-VII) reuse
// the figure runs instead of repeating them.
var benchCache sync.Map

func runPanel(b *testing.B, panel *experiment.Sweep) *experiment.Result {
	b.Helper()
	if r, ok := benchCache.Load(panel.ID); ok {
		return r.(*experiment.Result)
	}
	r, err := panel.Run(0)
	if err != nil {
		b.Fatal(err)
	}
	benchCache.Store(panel.ID, r)
	return r
}

// benchFigure runs every panel of an experiment once per iteration,
// printing tables and improvement rows on the first.
func benchFigure(b *testing.B, id string) {
	e, err := experiment.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		results := make([]*experiment.Result, len(e.Panels))
		for pi, panel := range e.Panels {
			if i == 0 {
				results[pi] = runPanel(b, panel)
				continue
			}
			r, err := panel.Run(0)
			if err != nil {
				b.Fatal(err)
			}
			results[pi] = r
		}
		if i == 0 {
			fmt.Printf("\n=== %s — %s ===\n", e.ID, e.Title)
			for _, r := range results {
				fmt.Println(r.Table())
			}
			for _, spec := range e.Improvements {
				tbl, err := results[spec.Panel].ImprovementTable(spec.Name, spec.Target, spec.Baselines)
				if err != nil {
					b.Fatal(err)
				}
				fmt.Println(tbl)
			}
		}
	}
}

// reportImprovements attaches a table's maximum-%-improvement rows as
// custom benchmark metrics.
func reportImprovements(b *testing.B, r *experiment.Result, target string, baselines []string) {
	for _, base := range baselines {
		for _, m := range []experiment.Metric{experiment.MetricUtil, experiment.MetricWait, experiment.MetricSlow} {
			v, err := r.MaxImprovement(target, base, m)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(v, fmt.Sprintf("imp%%_%s_vs_%s", m.Name, base))
		}
	}
}

// benchTable reproduces one improvement table from its source figure.
func benchTable(b *testing.B, figID string, panel int, name, target string, baselines []string) {
	e, err := experiment.ByID(figID)
	if err != nil {
		b.Fatal(err)
	}
	var r *experiment.Result
	for i := 0; i < b.N; i++ {
		r = runPanel(b, e.Panels[panel])
	}
	reportImprovements(b, r, target, baselines)
	tbl, err := r.ImprovementTable(name, target, baselines)
	if err != nil {
		b.Fatal(err)
	}
	fmt.Printf("\n%s\n", tbl)
}

// --- Figures ---------------------------------------------------------------

// BenchmarkFig1 regenerates Figure 1: EASY vs LOS mean waiting time against
// load on the SDSC-like trace, load varied by arrival-time scaling.
func BenchmarkFig1(b *testing.B) { benchFigure(b, "fig1") }

// BenchmarkFig5 regenerates Figure 5: utilization and waiting time against
// the maximum skip count C_s (Load=0.9, P_S=0.5).
func BenchmarkFig5(b *testing.B) { benchFigure(b, "fig5") }

// BenchmarkFig6 regenerates Figure 6: the C_s sweep with small jobs
// dominant (P_S=0.8).
func BenchmarkFig6(b *testing.B) { benchFigure(b, "fig6") }

// BenchmarkFig7 regenerates Figure 7: batch metrics against load for
// P_S=0.2 (the regime where Delayed-LOS wins and LOS trails EASY).
func BenchmarkFig7(b *testing.B) { benchFigure(b, "fig7") }

// BenchmarkFig8 regenerates Figure 8: waiting time against load for
// P_S=0.5 and P_S=0.8.
func BenchmarkFig8(b *testing.B) { benchFigure(b, "fig8") }

// BenchmarkFig9 regenerates Figure 9: heterogeneous workload (P_D=0.5,
// P_S=0.2) under EASY-D, LOS-D and Hybrid-LOS.
func BenchmarkFig9(b *testing.B) { benchFigure(b, "fig9") }

// BenchmarkFig10 regenerates Figure 10: dedicated-heavy workload (P_D=0.9,
// P_S=0.5).
func BenchmarkFig10(b *testing.B) { benchFigure(b, "fig10") }

// BenchmarkFig11 regenerates Figure 11: the elastic workloads (ECCs with
// P_E=0.2, P_R=0.1) for the batch and heterogeneous -E families.
func BenchmarkFig11(b *testing.B) { benchFigure(b, "fig11") }

// --- Tables ------------------------------------------------------------------

// BenchmarkTable4 reproduces Table IV: maximum % improvement of Delayed-LOS
// over LOS and EASY on the Figure 7 sweep.
func BenchmarkTable4(b *testing.B) {
	benchTable(b, "fig7", 0, "Table IV", "Delayed-LOS", []string{"LOS", "EASY"})
}

// BenchmarkTable5 reproduces Table V: Hybrid-LOS over LOS-D and EASY-D on
// the Figure 9 sweep.
func BenchmarkTable5(b *testing.B) {
	benchTable(b, "fig9", 0, "Table V", "Hybrid-LOS", []string{"LOS-D", "EASY-D"})
}

// BenchmarkTable6 reproduces Table VI: Delayed-LOS-E over LOS-E and EASY-E
// on the Figure 11 batch panel.
func BenchmarkTable6(b *testing.B) {
	benchTable(b, "fig11", 0, "Table VI", "Delayed-LOS-E", []string{"LOS-E", "EASY-E"})
}

// BenchmarkTable7 reproduces Table VII: Hybrid-LOS-E over LOS-DE and
// EASY-DE on the Figure 11 heterogeneous panel.
func BenchmarkTable7(b *testing.B) {
	benchTable(b, "fig11", 1, "Table VII", "Hybrid-LOS-E", []string{"LOS-DE", "EASY-DE"})
}

// --- Extension studies -------------------------------------------------------

// BenchmarkAblationLookahead sweeps the DP window depth (the LOS paper
// fixes 50).
func BenchmarkAblationLookahead(b *testing.B) { benchFigure(b, "lookahead") }

// BenchmarkAblationECCSensitivity sweeps the extension probability P_E.
func BenchmarkAblationECCSensitivity(b *testing.B) { benchFigure(b, "ecc-sensitivity") }

// BenchmarkBaselines compares the Section II related-work baselines.
func BenchmarkBaselines(b *testing.B) { benchFigure(b, "baselines") }

// BenchmarkSizeElastic exercises the future-work EP/RP size elasticity.
func BenchmarkSizeElastic(b *testing.B) { benchFigure(b, "size-elastic") }

// BenchmarkAblationEstimates sweeps the estimate over-estimation factor
// (the Mu'alem-Feitelson effect cited in Section II).
func BenchmarkAblationEstimates(b *testing.B) { benchFigure(b, "estimates") }

// BenchmarkAblationLOSVariants compares the two readings of LOS (head-only
// vs head+DP-fill) against EASY and Delayed-LOS.
func BenchmarkAblationLOSVariants(b *testing.B) { benchFigure(b, "los-variants") }

// BenchmarkHeteroBaselines adds conservative-with-reservations (CONS-D) to
// the heterogeneous comparison.
func BenchmarkHeteroBaselines(b *testing.B) { benchFigure(b, "hetero-baselines") }

// BenchmarkFragmentation measures BlueGene-style contiguous allocation and
// migration-based defragmentation (Krevat et al., Section II).
func BenchmarkFragmentation(b *testing.B) { benchFigure(b, "fragmentation") }

// BenchmarkMachineScaling sweeps the machine size at fixed load.
func BenchmarkMachineScaling(b *testing.B) { benchFigure(b, "machine-scaling") }

// BenchmarkLongRun is the paper's Section V sanity check with a long trace.
func BenchmarkLongRun(b *testing.B) { benchFigure(b, "longrun") }

// BenchmarkAdaptiveSelection evaluates the dynamic Delayed-LOS/EASY
// selection policy across the P_S spectrum.
func BenchmarkAdaptiveSelection(b *testing.B) { benchFigure(b, "adaptive") }
